#!/usr/bin/env python3
"""Schema validator for the obs-layer artefacts.

Checks the three file formats the instrumentation layer emits:

  * metrics JSON   (dynp_sim --metrics-out, obs::Registry::write_json;
                    including the windowed time-series snapshots)
  * JSONL traces   (dynp_sim --trace-out --trace-format jsonl; including
                    the provenance jspan/jflow records emitted under
                    --trace-provenance)
  * Chrome traces  (dynp_sim --trace-out --trace-format chrome;
                    the chrome://tracing / Perfetto trace_event format)

Provenance traces get a structural pass on top of the per-record schema
check: span ids must be unique, parent ids must resolve, child spans must
nest inside their job's terminal root span, every job lifecycle must
terminate (exactly one `job` root with a finished/dropped outcome), and
flow records must connect a commit span to a run span. The checks run
collect-then-verify because root spans are emitted when the lifecycle
*closes*, i.e. after all of their children.

Usage:
  validate_trace.py --metrics run.json
  validate_trace.py --trace run.jsonl --format jsonl
  validate_trace.py --trace run.trace --format chrome
  validate_trace.py --run path/to/dynp_sim --workdir /tmp/x

`--run` drives an end-to-end check (used as a ctest entry): it invokes the
given dynp_sim binary once per trace format on a small workload and then
validates everything the run produced.

Exit status 0 = all checks passed; 1 = validation failure (details on
stderr); 2 = usage error.
"""

import argparse
import json
import os
import subprocess
import sys

EVENT_REQUIRED = {"type", "seq", "t", "kind", "queue_depth", "started",
                  "full_plans", "incremental_plans", "jobs_placed",
                  "jobs_replayed", "profile_segments"}
DECISION_REQUIRED = {"type", "seq", "values", "old_index", "chosen"}
SPAN_REQUIRED = {"type", "name", "ts_us", "dur_us", "tid"}
FAULT_REQUIRED = {"type", "seq", "t", "what", "down_nodes"}
EVENT_KINDS = ("submit", "finish", "job_fail", "node_down", "node_up",
               "requeue")
FAULT_WHATS = ("node_down", "node_up", "job_fail", "node_kill", "requeue",
               "drop")
HISTOGRAM_REQUIRED = {"count", "sum", "min", "max", "mean", "p50", "p90",
                      "p99", "le", "bucket_counts"}
JSPAN_REQUIRED = {"type", "name", "id", "parent", "seq", "t0", "t1"}
JFLOW_REQUIRED = {"type", "from", "to", "job", "seq", "t"}
SERIES_REQUIRED = {"window", "capacity", "late", "total", "windows"}
AGGREGATE_REQUIRED = {"count", "sum", "min", "max", "p50", "p95", "p99",
                      "p999"}
SPAN_OUTCOMES = ("finished", "dropped")


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def validate_metrics(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    for key in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(key), dict):
            return fail(f"{path}: missing object '{key}'")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            return fail(f"{path}: counter {name} is not a non-negative int")
    for name, hist in doc["histograms"].items():
        missing = HISTOGRAM_REQUIRED - hist.keys()
        if missing:
            return fail(f"{path}: histogram {name} missing {sorted(missing)}")
        le, counts = hist["le"], hist["bucket_counts"]
        if len(counts) != len(le) + 1:
            return fail(f"{path}: histogram {name}: bucket_counts must have "
                        f"len(le)+1 entries ({len(counts)} vs {len(le)}+1)")
        if sorted(le) != le or len(set(le)) != len(le):
            return fail(f"{path}: histogram {name}: le edges not strictly "
                        "ascending")
        if sum(counts) != hist["count"]:
            return fail(f"{path}: histogram {name}: bucket counts sum to "
                        f"{sum(counts)}, count says {hist['count']}")
        if hist["count"] > 0 and not hist["min"] <= hist["mean"] <= hist["max"]:
            return fail(f"{path}: histogram {name}: min <= mean <= max "
                        "violated")
    # The "series" key is optional: registries without windowed series keep
    # the pre-series snapshot layout.
    series = doc.get("series", {})
    if not isinstance(series, dict):
        return fail(f"{path}: 'series' is not an object")
    for name, s in series.items():
        missing = SERIES_REQUIRED - s.keys()
        if missing:
            return fail(f"{path}: series {name} missing {sorted(missing)}")
        for where, agg in [("total", s["total"])] + [
                (f"windows[{i}]", w) for i, w in enumerate(s["windows"])]:
            missing = AGGREGATE_REQUIRED - agg.keys()
            if missing:
                return fail(f"{path}: series {name} {where} missing "
                            f"{sorted(missing)}")
            if agg["count"] > 0 and not (agg["min"] <= agg["p50"]
                                         <= agg["p95"] <= agg["p99"]
                                         <= agg["p999"]):
                return fail(f"{path}: series {name} {where}: quantiles not "
                            "monotone")
        keys = [w["k"] for w in s["windows"]]
        if sorted(keys) != keys or len(set(keys)) != len(keys):
            return fail(f"{path}: series {name}: window indices not strictly "
                        "ascending")
        if len(keys) > s["capacity"]:
            return fail(f"{path}: series {name}: more windows than capacity")
        # Evicted windows fold into the totals, so the retained ring plus the
        # late-arrival counter can never exceed the cumulative count.
        windowed = sum(w["count"] for w in s["windows"])
        if windowed + s["late"] > s["total"]["count"]:
            return fail(f"{path}: series {name}: windowed+late "
                        f"({windowed}+{s['late']}) exceeds total count "
                        f"{s['total']['count']}")
    print(f"validate_trace: OK: {path} (metrics: "
          f"{len(doc['counters'])} counters, "
          f"{len(doc['histograms'])} histograms, "
          f"{len(series)} series)")
    return 0


def validate_provenance(path, spans, flows):
    """Structural pass over collected jspan/jflow records (see module doc)."""
    by_id = {}
    for lineno, rec in spans:
        if rec["id"] in by_id:
            return fail(f"{path}:{lineno}: duplicate span id {rec['id']}")
        by_id[rec["id"]] = rec
    roots = {}
    for lineno, rec in spans:
        if rec["parent"] != 0 and rec["parent"] not in by_id:
            return fail(f"{path}:{lineno}: span parent {rec['parent']} "
                        "unresolved")
        if rec["t1"] < rec["t0"]:
            return fail(f"{path}:{lineno}: span {rec['name']} closes before "
                        "it opens")
        if rec["name"] == "job":
            if rec["job"] in roots:
                return fail(f"{path}:{lineno}: job {rec['job']} has two "
                            "terminal spans")
            if rec.get("outcome") not in SPAN_OUTCOMES:
                return fail(f"{path}:{lineno}: job {rec['job']} lifecycle "
                            f"ended with {rec.get('outcome')!r}")
            roots[rec["job"]] = rec
    for lineno, rec in spans:
        if rec.get("job") is None or rec["name"] == "job":
            continue
        root = roots.get(rec["job"])
        if root is None:
            return fail(f"{path}:{lineno}: span for job {rec['job']} but its "
                        "lifecycle never terminated")
        if rec["parent"] != root["id"]:
            return fail(f"{path}:{lineno}: {rec['name']} span does not "
                        f"parent to job {rec['job']}'s root")
        if not root["t0"] <= rec["t0"] <= rec["t1"] <= root["t1"]:
            return fail(f"{path}:{lineno}: {rec['name']} span escapes job "
                        f"{rec['job']}'s root interval")
    for lineno, rec in flows:
        src, dst = by_id.get(rec["from"]), by_id.get(rec["to"])
        if src is None or dst is None:
            return fail(f"{path}:{lineno}: flow endpoints do not resolve")
        if src["name"] != "commit" or dst["name"] != "run":
            return fail(f"{path}:{lineno}: flow is not commit -> run "
                        f"({src['name']} -> {dst['name']})")
    return 0


def validate_jsonl(path):
    n, last_event_seq = 0, 0
    prov_spans, prov_flows = [], []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                return fail(f"{path}:{lineno}: not valid JSON: {e}")
            kind = rec.get("type")
            required = {"event": EVENT_REQUIRED,
                        "decision": DECISION_REQUIRED,
                        "span": SPAN_REQUIRED,
                        "fault": FAULT_REQUIRED,
                        "jspan": JSPAN_REQUIRED,
                        "jflow": JFLOW_REQUIRED}.get(kind)
            if required is None:
                return fail(f"{path}:{lineno}: unknown record type {kind!r}")
            missing = required - rec.keys()
            if missing:
                return fail(f"{path}:{lineno}: {kind} record missing "
                            f"{sorted(missing)}")
            if kind == "jspan":
                prov_spans.append((lineno, rec))
            if kind == "jflow":
                prov_flows.append((lineno, rec))
            if kind == "event":
                if rec["seq"] < last_event_seq:
                    return fail(f"{path}:{lineno}: event seq went backwards")
                last_event_seq = rec["seq"]
                if rec["kind"] not in EVENT_KINDS:
                    return fail(f"{path}:{lineno}: bad event kind "
                                f"{rec['kind']!r}")
                if rec.get("tuned") and "chosen" not in rec:
                    return fail(f"{path}:{lineno}: tuned event lacks decider "
                                "verdict")
            if kind == "fault":
                if rec["what"] not in FAULT_WHATS:
                    return fail(f"{path}:{lineno}: bad fault record "
                                f"{rec['what']!r}")
                if rec["down_nodes"] < 0:
                    return fail(f"{path}:{lineno}: negative down_nodes")
            if kind == "span" and rec["dur_us"] < 0:
                return fail(f"{path}:{lineno}: negative span duration")
            n += 1
    if n == 0:
        return fail(f"{path}: empty trace")
    if prov_spans or prov_flows:
        status = validate_provenance(path, prov_spans, prov_flows)
        if status:
            return status
    print(f"validate_trace: OK: {path} (jsonl: {n} records, "
          f"{len(prov_spans)} spans, {len(prov_flows)} flows)")
    return 0


def validate_chrome(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)  # raises (and we fail) on malformed JSON
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(f"{path}: no traceEvents array")
    phases = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in ("X", "i", "C", "M"):
            return fail(f"{path}: traceEvents[{i}]: unexpected ph {ph!r}")
        phases[ph] = phases.get(ph, 0) + 1
        if "pid" not in ev:
            return fail(f"{path}: traceEvents[{i}]: missing pid")
        if ph == "X" and (ev.get("dur", -1) < 0 or "ts" not in ev):
            return fail(f"{path}: traceEvents[{i}]: complete event needs "
                        "ts and non-negative dur")
        if ph == "C" and not isinstance(ev.get("args"), dict):
            return fail(f"{path}: traceEvents[{i}]: counter event needs args")
        if ph != "M" and "name" not in ev:
            return fail(f"{path}: traceEvents[{i}]: missing name")
    if phases.get("M", 0) < 1:
        return fail(f"{path}: missing process_name metadata events")
    print(f"validate_trace: OK: {path} (chrome: {len(events)} events, "
          f"{phases})")
    return 0


def run_end_to_end(binary, workdir):
    os.makedirs(workdir, exist_ok=True)
    base = ["--trace", "KTH", "--jobs", "400", "--scheduler", "dynp-advanced",
            "--factor", "0.7"]
    metrics = os.path.join(workdir, "run_metrics.json")
    jsonl = os.path.join(workdir, "run_trace.jsonl")
    chrome = os.path.join(workdir, "run_trace_chrome.json")
    fault_jsonl = os.path.join(workdir, "run_fault_trace.jsonl")
    prov_jsonl = os.path.join(workdir, "run_provenance_trace.jsonl")
    for extra in (["--profile", "--metrics-out", metrics,
                   "--trace-out", jsonl, "--trace-format", "jsonl"],
                  ["--trace-out", chrome, "--trace-format", "chrome"],
                  ["--faults", "--mtbf", "40000", "--job-fail-p", "0.05",
                   "--trace-out", fault_jsonl, "--trace-format", "jsonl"],
                  # Fault-injected provenance run: job lifecycles must
                  # terminate and nest even across fail -> backoff -> requeue
                  # chains.
                  ["--faults", "--job-fail-p", "0.08", "--max-retries", "2",
                   "--trace-out", prov_jsonl, "--trace-format", "jsonl",
                   "--trace-provenance"]):
        cmd = [binary] + base + extra
        proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout.decode(errors="replace"))
            return fail(f"{' '.join(cmd)} exited {proc.returncode}")
    return (validate_metrics(metrics)
            or validate_jsonl(jsonl)
            or validate_chrome(chrome)
            or validate_jsonl(fault_jsonl)
            or validate_jsonl(prov_jsonl))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--metrics", help="metrics JSON file to validate")
    ap.add_argument("--trace", help="trace file to validate")
    ap.add_argument("--format", choices=("jsonl", "chrome"), default="jsonl",
                    help="trace encoding of --trace")
    ap.add_argument("--run", metavar="DYNP_SIM",
                    help="run this dynp_sim binary end to end, then validate "
                         "its outputs")
    ap.add_argument("--workdir", default=".",
                    help="output directory for --run")
    args = ap.parse_args()

    if args.run:
        return run_end_to_end(args.run, args.workdir)
    status = 0
    ran = False
    if args.metrics:
        ran = True
        status = status or validate_metrics(args.metrics)
    if args.trace:
        ran = True
        validator = validate_jsonl if args.format == "jsonl" else validate_chrome
        status = status or validator(args.trace)
    if not ran:
        ap.print_usage(sys.stderr)
        return 2
    return status


if __name__ == "__main__":
    sys.exit(main())
