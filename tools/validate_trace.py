#!/usr/bin/env python3
"""Schema validator for the obs-layer artefacts.

Checks the three file formats the instrumentation layer emits:

  * metrics JSON   (dynp_sim --metrics-out, obs::Registry::write_json)
  * JSONL traces   (dynp_sim --trace-out --trace-format jsonl)
  * Chrome traces  (dynp_sim --trace-out --trace-format chrome;
                    the chrome://tracing / Perfetto trace_event format)

Usage:
  validate_trace.py --metrics run.json
  validate_trace.py --trace run.jsonl --format jsonl
  validate_trace.py --trace run.trace --format chrome
  validate_trace.py --run path/to/dynp_sim --workdir /tmp/x

`--run` drives an end-to-end check (used as a ctest entry): it invokes the
given dynp_sim binary once per trace format on a small workload and then
validates everything the run produced.

Exit status 0 = all checks passed; 1 = validation failure (details on
stderr); 2 = usage error.
"""

import argparse
import json
import os
import subprocess
import sys

EVENT_REQUIRED = {"type", "seq", "t", "kind", "queue_depth", "started",
                  "full_plans", "incremental_plans", "jobs_placed",
                  "jobs_replayed", "profile_segments"}
DECISION_REQUIRED = {"type", "seq", "values", "old_index", "chosen"}
SPAN_REQUIRED = {"type", "name", "ts_us", "dur_us", "tid"}
FAULT_REQUIRED = {"type", "seq", "t", "what", "down_nodes"}
EVENT_KINDS = ("submit", "finish", "job_fail", "node_down", "node_up",
               "requeue")
FAULT_WHATS = ("node_down", "node_up", "job_fail", "node_kill", "requeue",
               "drop")
HISTOGRAM_REQUIRED = {"count", "sum", "min", "max", "mean", "p50", "p90",
                      "p99", "le", "bucket_counts"}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def validate_metrics(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    for key in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(key), dict):
            return fail(f"{path}: missing object '{key}'")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            return fail(f"{path}: counter {name} is not a non-negative int")
    for name, hist in doc["histograms"].items():
        missing = HISTOGRAM_REQUIRED - hist.keys()
        if missing:
            return fail(f"{path}: histogram {name} missing {sorted(missing)}")
        le, counts = hist["le"], hist["bucket_counts"]
        if len(counts) != len(le) + 1:
            return fail(f"{path}: histogram {name}: bucket_counts must have "
                        f"len(le)+1 entries ({len(counts)} vs {len(le)}+1)")
        if sorted(le) != le or len(set(le)) != len(le):
            return fail(f"{path}: histogram {name}: le edges not strictly "
                        "ascending")
        if sum(counts) != hist["count"]:
            return fail(f"{path}: histogram {name}: bucket counts sum to "
                        f"{sum(counts)}, count says {hist['count']}")
        if hist["count"] > 0 and not hist["min"] <= hist["mean"] <= hist["max"]:
            return fail(f"{path}: histogram {name}: min <= mean <= max "
                        "violated")
    print(f"validate_trace: OK: {path} (metrics: "
          f"{len(doc['counters'])} counters, "
          f"{len(doc['histograms'])} histograms)")
    return 0


def validate_jsonl(path):
    n, last_event_seq = 0, 0
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                return fail(f"{path}:{lineno}: not valid JSON: {e}")
            kind = rec.get("type")
            required = {"event": EVENT_REQUIRED,
                        "decision": DECISION_REQUIRED,
                        "span": SPAN_REQUIRED,
                        "fault": FAULT_REQUIRED}.get(kind)
            if required is None:
                return fail(f"{path}:{lineno}: unknown record type {kind!r}")
            missing = required - rec.keys()
            if missing:
                return fail(f"{path}:{lineno}: {kind} record missing "
                            f"{sorted(missing)}")
            if kind == "event":
                if rec["seq"] < last_event_seq:
                    return fail(f"{path}:{lineno}: event seq went backwards")
                last_event_seq = rec["seq"]
                if rec["kind"] not in EVENT_KINDS:
                    return fail(f"{path}:{lineno}: bad event kind "
                                f"{rec['kind']!r}")
                if rec.get("tuned") and "chosen" not in rec:
                    return fail(f"{path}:{lineno}: tuned event lacks decider "
                                "verdict")
            if kind == "fault":
                if rec["what"] not in FAULT_WHATS:
                    return fail(f"{path}:{lineno}: bad fault record "
                                f"{rec['what']!r}")
                if rec["down_nodes"] < 0:
                    return fail(f"{path}:{lineno}: negative down_nodes")
            if kind == "span" and rec["dur_us"] < 0:
                return fail(f"{path}:{lineno}: negative span duration")
            n += 1
    if n == 0:
        return fail(f"{path}: empty trace")
    print(f"validate_trace: OK: {path} (jsonl: {n} records)")
    return 0


def validate_chrome(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)  # raises (and we fail) on malformed JSON
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(f"{path}: no traceEvents array")
    phases = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in ("X", "i", "C", "M"):
            return fail(f"{path}: traceEvents[{i}]: unexpected ph {ph!r}")
        phases[ph] = phases.get(ph, 0) + 1
        if "pid" not in ev:
            return fail(f"{path}: traceEvents[{i}]: missing pid")
        if ph == "X" and (ev.get("dur", -1) < 0 or "ts" not in ev):
            return fail(f"{path}: traceEvents[{i}]: complete event needs "
                        "ts and non-negative dur")
        if ph == "C" and not isinstance(ev.get("args"), dict):
            return fail(f"{path}: traceEvents[{i}]: counter event needs args")
        if ph != "M" and "name" not in ev:
            return fail(f"{path}: traceEvents[{i}]: missing name")
    if phases.get("M", 0) < 1:
        return fail(f"{path}: missing process_name metadata events")
    print(f"validate_trace: OK: {path} (chrome: {len(events)} events, "
          f"{phases})")
    return 0


def run_end_to_end(binary, workdir):
    os.makedirs(workdir, exist_ok=True)
    base = ["--trace", "KTH", "--jobs", "400", "--scheduler", "dynp-advanced",
            "--factor", "0.7"]
    metrics = os.path.join(workdir, "run_metrics.json")
    jsonl = os.path.join(workdir, "run_trace.jsonl")
    chrome = os.path.join(workdir, "run_trace_chrome.json")
    fault_jsonl = os.path.join(workdir, "run_fault_trace.jsonl")
    for extra in (["--profile", "--metrics-out", metrics,
                   "--trace-out", jsonl, "--trace-format", "jsonl"],
                  ["--trace-out", chrome, "--trace-format", "chrome"],
                  ["--faults", "--mtbf", "40000", "--job-fail-p", "0.05",
                   "--trace-out", fault_jsonl, "--trace-format", "jsonl"]):
        cmd = [binary] + base + extra
        proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout.decode(errors="replace"))
            return fail(f"{' '.join(cmd)} exited {proc.returncode}")
    return (validate_metrics(metrics)
            or validate_jsonl(jsonl)
            or validate_chrome(chrome)
            or validate_jsonl(fault_jsonl))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--metrics", help="metrics JSON file to validate")
    ap.add_argument("--trace", help="trace file to validate")
    ap.add_argument("--format", choices=("jsonl", "chrome"), default="jsonl",
                    help="trace encoding of --trace")
    ap.add_argument("--run", metavar="DYNP_SIM",
                    help="run this dynp_sim binary end to end, then validate "
                         "its outputs")
    ap.add_argument("--workdir", default=".",
                    help="output directory for --run")
    args = ap.parse_args()

    if args.run:
        return run_end_to_end(args.run, args.workdir)
    status = 0
    ran = False
    if args.metrics:
        ran = True
        status = status or validate_metrics(args.metrics)
    if args.trace:
        ran = True
        validator = validate_jsonl if args.format == "jsonl" else validate_chrome
        status = status or validator(args.trace)
    if not ran:
        ap.print_usage(sys.stderr)
        return 2
    return status


if __name__ == "__main__":
    sys.exit(main())
