/// dynp_chaos — kill-and-resume chaos soak over dynp_sim's checkpointing.
///
/// Protocol (see DESIGN.md §15):
///
///  1. Run one uninterrupted, fault-injected reference simulation with CSV
///     export and a JSONL event trace; its last event ordinal sizes the
///     kill schedule.
///  2. Re-run the same configuration with periodic snapshots and the
///     `--kill-at-event` crash hook, SIGKILLing the process at N strictly
///     increasing seed-derived event offsets; every restart resumes with
///     `--restore` from the newest valid snapshot. Crashing this way is
///     exactly an external `kill -9` (no flushing, no destructors) minus
///     the race over *where* it lands.
///  3. Twice during the soak the newest snapshot is deliberately truncated:
///     once mid-soak (the next restart must roll back past it — verified by
///     the resume point in its trace) and once before the final run (which
///     survives to print the `checkpoint rejected:` provenance line).
///  4. The final run completes with `--audit --validate` and exports CSVs.
///     The harness then asserts the exported CSVs are byte-identical to the
///     reference's, and stitches the per-segment traces (each segment owns
///     the event window up to the next segment's resume point) into a file
///     that must equal the reference trace byte for byte.
///
/// Exit 0 on a clean soak; 1 with a diagnostic on the first divergence.

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

namespace fs = std::filesystem;

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "dynp_chaos: %s\n", message.c_str());
  std::exit(1);
}

struct ChildStatus {
  bool exited = false;
  int exit_code = -1;
  bool signaled = false;
  int signal = 0;
};

/// Runs \p args (args[0] = binary) with stdout+stderr redirected to
/// \p log_path and waits for it.
ChildStatus run_child(const std::vector<std::string>& args,
                      const std::string& log_path) {
  const pid_t pid = ::fork();
  if (pid < 0) die("fork failed");
  if (pid == 0) {
    const int fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      ::dup2(fd, 1);
      ::dup2(fd, 2);
      ::close(fd);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::_Exit(127);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) die("waitpid failed");
  ChildStatus result;
  if (WIFEXITED(status)) {
    result.exited = true;
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.signaled = true;
    result.signal = WTERMSIG(status);
  }
  return result;
}

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) die("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Splits \p text into complete lines; a torn final line (no trailing
/// newline — the crash hit mid-write) is dropped, exactly what restore's
/// journal reader does with torn record tails.
[[nodiscard]] std::vector<std::string> complete_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) break;  // no newline: incomplete tail
    lines.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

/// Event ordinal of one JSONL trace record (every event/fault record
/// carries `"seq":`).
[[nodiscard]] std::optional<unsigned long long> record_seq(
    const std::string& line) {
  const std::size_t pos = line.find("\"seq\":");
  if (pos == std::string::npos) return std::nullopt;
  const char* begin = line.c_str() + pos + 6;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(begin, &end, 10);
  if (end == begin) return std::nullopt;
  return value;
}

struct SnapshotFile {
  std::string path;
  unsigned long long seq = 0;
};

/// Newest published snapshot in \p dir by embedded sequence number.
/// Publication is atomic (temp + rename), so every `.snap` file present was
/// completely written — unless this harness tore it on purpose.
[[nodiscard]] std::optional<SnapshotFile> newest_snapshot(
    const std::string& dir) {
  std::optional<SnapshotFile> best;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() != 22 || name.rfind("ckpt-", 0) != 0 ||
        name.find(".snap", 17) != 17) {
      continue;
    }
    char* end = nullptr;
    const unsigned long long seq = std::strtoull(name.c_str() + 5, &end, 10);
    if (end != name.c_str() + 17) continue;
    if (!best.has_value() || seq > best->seq) {
      best = SnapshotFile{entry.path().string(), seq};
    }
  }
  return best;
}

/// Tears the newest snapshot in half — a classic torn write. Restore must
/// reject it via the content hash and roll back to the previous snapshot.
[[nodiscard]] SnapshotFile tear_newest_snapshot(const std::string& dir) {
  const std::optional<SnapshotFile> victim = newest_snapshot(dir);
  if (!victim.has_value()) die("no snapshot to tear in " + dir);
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(victim->path, ec);
  if (ec) die("cannot stat " + victim->path);
  fs::resize_file(victim->path, size > 32 ? size / 2 : 1, ec);
  if (ec) die("cannot truncate " + victim->path);
  return *victim;
}

/// One soak segment's durable output.
struct Segment {
  std::vector<std::string> lines;
  unsigned long long first_seq = 0;
  bool any = false;
};

[[nodiscard]] Segment load_segment(const std::string& trace_path) {
  Segment segment;
  std::ifstream in(trace_path, std::ios::binary);
  if (!in) return segment;  // killed before the first flush: empty window
  std::ostringstream buffer;
  buffer << in.rdbuf();
  segment.lines = complete_lines(buffer.str());
  if (!segment.lines.empty()) {
    const std::optional<unsigned long long> seq = record_seq(segment.lines[0]);
    if (!seq.has_value()) die("unparsable trace record in " + trace_path);
    segment.first_seq = *seq;
    segment.any = true;
  }
  return segment;
}

}  // namespace

int main(int argc, char** argv) {
  dynp::util::CliParser cli(
      "dynp_chaos — SIGKILL a checkpointed dynp_sim run at seed-derived "
      "event offsets, resume from snapshots, and verify the stitched output "
      "is byte-identical to an uninterrupted run");
  cli.add_option("sim", "", "path to the dynp_sim binary (required)");
  cli.add_option("workdir", "", "scratch directory (recreated; required)");
  cli.add_option("kills", "10", "number of SIGKILL points");
  cli.add_option("seed", "7", "seed of the kill schedule");
  cli.add_option("jobs", "600", "workload size of the soaked run");
  if (!cli.parse(argc, argv)) return 1;
  const std::string sim = cli.get("sim");
  const std::string workdir = cli.get("workdir");
  if (sim.empty() || workdir.empty()) die("--sim and --workdir are required");
  const auto kills_opt = cli.get_int_checked("kills", 1, 1000);
  const auto seed_opt = cli.get_int_checked("seed", 0, 1LL << 62);
  const auto jobs_opt = cli.get_int_checked("jobs", 50, 1000000);
  if (!kills_opt || !seed_opt || !jobs_opt) return 1;
  const std::size_t kills = static_cast<std::size_t>(*kills_opt);

  std::error_code ec;
  fs::remove_all(workdir, ec);
  const std::string ref_dir = workdir + "/ref";
  const std::string out_dir = workdir + "/out";
  const std::string ckpt_dir = workdir + "/ckpt";
  fs::create_directories(ref_dir, ec);
  fs::create_directories(out_dir, ec);
  if (ec) die("cannot create " + workdir);

  // The soaked configuration: dynP self-tuning with replan semantics plus
  // node outages, mid-run job failures and requeue chains — the state-richest
  // path through the scheduler (decider, fault RNG chains, pending outage
  // timelines all live across the kill points).
  const std::vector<std::string> base = {
      sim,           "--trace",       "KTH",
      "--jobs",      std::to_string(*jobs_opt),
      "--seed",      "42",
      "--factor",    "0.7",
      "--scheduler", "dynp-advanced",
      "--semantics", "replan",
      "--faults",    "--fault-seed",  "3",
      "--mtbf",      "200000",
      "--repair",    "4000",
      "--job-fail-p", "0.02",
      "--max-retries", "50",
      "--audit"};

  // 1. Uninterrupted reference run.
  std::vector<std::string> ref_args = base;
  ref_args.insert(ref_args.end(),
                  {"--validate", "--export", ref_dir, "--trace-out",
                   workdir + "/ref.trace", "--trace-format", "jsonl"});
  const ChildStatus ref = run_child(ref_args, workdir + "/ref.log");
  if (!ref.exited || ref.exit_code != 0) {
    die("reference run failed (see " + workdir + "/ref.log)");
  }
  const std::vector<std::string> ref_lines =
      complete_lines(read_file(workdir + "/ref.trace"));
  unsigned long long total_events = 0;
  for (const std::string& line : ref_lines) {
    const std::optional<unsigned long long> seq = record_seq(line);
    if (!seq.has_value()) die("unparsable record in reference trace");
    total_events = std::max(total_events, *seq);
  }
  if (total_events < 50 * kills) {
    die("reference run too short (" + std::to_string(total_events) +
        " events) for " + std::to_string(kills) + " kills");
  }

  // 2. Seed-derived, strictly increasing kill schedule across the middle
  // 80% of the run, with several snapshots between consecutive kills.
  const unsigned long long every =
      std::max<unsigned long long>(8, total_events / 100);
  dynp::util::Xoshiro256 rng(static_cast<std::uint64_t>(*seed_opt));
  std::vector<unsigned long long> kill_at;
  const unsigned long long span = total_events * 8 / 10;
  for (std::size_t i = 0; i < kills; ++i) {
    const unsigned long long slot_base =
        total_events / 10 + span * i / kills;
    const unsigned long long jitter =
        rng.next_below(std::max<unsigned long long>(1, span / kills / 2));
    unsigned long long k = slot_base + jitter;
    if (!kill_at.empty()) k = std::max(k, kill_at.back() + 2);
    kill_at.push_back(k);
  }

  const std::vector<std::string> ckpt_args = {
      "--checkpoint-dir", ckpt_dir, "--checkpoint-every",
      std::to_string(every), "--restore", ckpt_dir};

  std::vector<Segment> segments;
  std::optional<SnapshotFile> torn;  // mid-soak tear awaiting verification
  std::size_t rollbacks_verified = 0;
  for (std::size_t i = 0; i < kills; ++i) {
    const std::string trace_path =
        workdir + "/seg_" + std::to_string(i) + ".trace";
    std::vector<std::string> args = base;
    args.insert(args.end(), ckpt_args.begin(), ckpt_args.end());
    args.insert(args.end(), {"--kill-at-event", std::to_string(kill_at[i]),
                             "--trace-out", trace_path, "--trace-format",
                             "jsonl"});
    const ChildStatus status =
        run_child(args, workdir + "/seg_" + std::to_string(i) + ".log");
    if (!status.signaled || status.signal != SIGKILL) {
      die("segment " + std::to_string(i) + " was not SIGKILLed at event " +
          std::to_string(kill_at[i]) + " (see its .log)");
    }
    Segment segment = load_segment(trace_path);
    if (torn.has_value() && segment.any) {
      // The first durable trace after the tear pins the resume point; a
      // rollback means it resumed strictly before the torn snapshot.
      if (segment.first_seq > torn->seq) {
        die("restart after torn snapshot " + torn->path + " resumed at " +
            std::to_string(segment.first_seq) + ", past the tear");
      }
      ++rollbacks_verified;
      torn.reset();
    }
    segments.push_back(std::move(segment));
    if (i == kills / 2) torn = tear_newest_snapshot(ckpt_dir);
  }

  // 3. Second deliberate tear right before the final run, which survives to
  // print the rejection and restore provenance.
  const SnapshotFile final_torn = tear_newest_snapshot(ckpt_dir);

  // 4. Final run: resume, finish, audit, validate, export.
  const std::string final_trace = workdir + "/seg_final.trace";
  const std::string final_log = workdir + "/seg_final.log";
  std::vector<std::string> final_args = base;
  final_args.insert(final_args.end(), ckpt_args.begin(), ckpt_args.end());
  final_args.insert(final_args.end(),
                    {"--validate", "--export", out_dir, "--trace-out",
                     final_trace, "--trace-format", "jsonl"});
  const ChildStatus fin = run_child(final_args, final_log);
  if (!fin.exited || fin.exit_code != 0) {
    die("final resumed run failed (see " + final_log + ")");
  }
  const std::string final_out = read_file(final_log);
  const std::string reject_line =
      "checkpoint rejected: " + final_torn.path;
  if (final_out.find(reject_line) == std::string::npos) {
    die("final run did not reject the torn snapshot (" + final_torn.path +
        "); see " + final_log);
  }
  if (final_out.find("restored from ") == std::string::npos) {
    die("final run did not restore from a snapshot; see " + final_log);
  }
  Segment final_segment = load_segment(final_trace);
  if (!final_segment.any) die("final run produced an empty trace");
  if (final_segment.first_seq > final_torn.seq) {
    die("final run resumed at " + std::to_string(final_segment.first_seq) +
        ", past the torn snapshot " + final_torn.path);
  }
  ++rollbacks_verified;
  segments.push_back(std::move(final_segment));

  // 5. Stitch: each segment owns the event window up to the next segment's
  // resume point (the next durable trace's first ordinal); the final
  // segment owns the rest. Restore re-processes — and re-traces — the
  // journal-replayed suffix, so consecutive windows meet exactly.
  std::string stitched;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (!segments[i].any) continue;
    unsigned long long window_end =
        std::numeric_limits<unsigned long long>::max();
    for (std::size_t j = i + 1; j < segments.size(); ++j) {
      if (segments[j].any) {
        window_end = segments[j].first_seq;
        break;
      }
    }
    for (const std::string& line : segments[i].lines) {
      const std::optional<unsigned long long> seq = record_seq(line);
      if (!seq.has_value()) die("unparsable trace record in segment");
      if (*seq < window_end) {
        stitched += line;
        stitched += '\n';
      }
    }
  }
  const std::string reference = read_file(workdir + "/ref.trace");
  if (stitched != reference) {
    const std::string stitched_path = workdir + "/stitched.trace";
    std::ofstream(stitched_path, std::ios::binary) << stitched;
    die("stitched trace differs from the uninterrupted run (compare " +
        stitched_path + " against " + workdir + "/ref.trace)");
  }

  for (const char* name : {"/outcomes.csv", "/policy_timeline.csv"}) {
    if (read_file(out_dir + name) != read_file(ref_dir + name)) {
      die(std::string("resumed export ") + name +
          " differs from the uninterrupted run");
    }
  }

  std::printf(
      "chaos soak clean: %zu SIGKILLs over %llu events (snapshot every "
      "%llu), %zu torn-snapshot rollbacks, stitched trace (%zu lines) and "
      "exported CSVs byte-identical to the uninterrupted run\n",
      kills, total_events, every, rollbacks_verified, ref_lines.size());
  return 0;
}
