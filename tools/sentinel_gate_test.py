#!/usr/bin/env python3
"""Exit-code contract test for the perf-regression sentinel gate.

Drives `bench_report --sentinel --compare-base A --compare-to B` over the
committed fixtures in tools/fixtures/ and asserts the exact exit codes:

  * base vs base            -> 0 (clean: no p99 moved)
  * base vs regressed       -> 2 (the injected 25% decision-latency p99
                                  regression trips the 10% gate)
  * base vs /dev/null-ish   -> 1 (no gateable keys: usage/structure error,
                                  distinct from a regression verdict)

plus the graceful-degradation contract for baselines that predate the
sentinel schema (no *_p99 keys) against a candidate that has them:

  * legacy(seconds) vs candidate within 10%   -> 0 (degraded seconds gate)
  * legacy(seconds) vs candidate 20% slower   -> 2 (degraded gate trips)
  * legacy without seconds vs candidate       -> 0 (nothing to gate: warn)

A plain ctest WILL_FAIL would accept any non-zero code; CI scripts branch
on 2-means-regression, so the codes themselves are the contract.

Usage: sentinel_gate_test.py --bench-report <binary> --fixtures <dir>
Exit status 0 = contract holds; 1 = violation (details on stderr).
"""

import argparse
import os
import subprocess
import sys
import tempfile


def gate(binary, base, to):
    proc = subprocess.run(
        [binary, "--sentinel", "--compare-base", base, "--compare-to", to],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    sys.stdout.write(proc.stdout.decode(errors="replace"))
    return proc.returncode


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench-report", required=True,
                    help="path to the bench_report binary")
    ap.add_argument("--fixtures", required=True,
                    help="directory holding sentinel_base.json and "
                         "sentinel_regressed.json")
    args = ap.parse_args()

    base = os.path.join(args.fixtures, "sentinel_base.json")
    regressed = os.path.join(args.fixtures, "sentinel_regressed.json")
    with open(base) as f:
        base_text = f.read()

    def temp_json(text):
        with tempfile.NamedTemporaryFile("w", suffix=".json",
                                         delete=False) as f:
            f.write(text)
            return f.name

    def with_seconds(seconds):
        # The candidate side of the degraded gate: the real base fixture
        # (which has *_p99 keys) with a top-level "seconds" grafted in.
        return base_text.replace("{", '{\n  "seconds": %.1f,' % seconds, 1)

    keyless = temp_json('{"benchmark": "dynp obs sentinel", "sentinel": {}}\n')
    legacy = temp_json('{"benchmark": "dynp obs sentinel", "seconds": 10.0}\n')
    legacy_bare = temp_json('{"benchmark": "dynp obs sentinel"}\n')
    cand_ok = temp_json(with_seconds(10.5))
    cand_slow = temp_json(with_seconds(12.0))
    temps = [keyless, legacy, legacy_bare, cand_ok, cand_slow]
    try:
        failures = 0
        for label, frm, to, want in (
                ("clean (base vs base)", base, base, 0),
                ("regression injected", base, regressed, 2),
                ("no gateable keys", base, keyless, 1),
                ("legacy baseline, seconds within 10%", legacy, cand_ok, 0),
                ("legacy baseline, seconds regressed", legacy, cand_slow, 2),
                ("legacy baseline without seconds", legacy_bare, base, 0)):
            got = gate(args.bench_report, frm, to)
            if got != want:
                print(f"sentinel_gate_test: FAIL: {label}: exit {got}, "
                      f"expected {want}", file=sys.stderr)
                failures += 1
            else:
                print(f"sentinel_gate_test: OK: {label} -> exit {got}")
        return 1 if failures else 0
    finally:
        for path in temps:
            os.unlink(path)


if __name__ == "__main__":
    sys.exit(main())
