#!/usr/bin/env python3
"""Exit-code contract test for the perf-regression sentinel gate.

Drives `bench_report --sentinel --compare-base A --compare-to B` over the
committed fixtures in tools/fixtures/ and asserts the exact exit codes:

  * base vs base            -> 0 (clean: no p99 moved)
  * base vs regressed       -> 2 (the injected 25% decision-latency p99
                                  regression trips the 10% gate)
  * base vs /dev/null-ish   -> 1 (no gateable keys: usage/structure error,
                                  distinct from a regression verdict)

A plain ctest WILL_FAIL would accept any non-zero code; CI scripts branch
on 2-means-regression, so the codes themselves are the contract.

Usage: sentinel_gate_test.py --bench-report <binary> --fixtures <dir>
Exit status 0 = contract holds; 1 = violation (details on stderr).
"""

import argparse
import os
import subprocess
import sys
import tempfile


def gate(binary, base, to):
    proc = subprocess.run(
        [binary, "--sentinel", "--compare-base", base, "--compare-to", to],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    sys.stdout.write(proc.stdout.decode(errors="replace"))
    return proc.returncode


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench-report", required=True,
                    help="path to the bench_report binary")
    ap.add_argument("--fixtures", required=True,
                    help="directory holding sentinel_base.json and "
                         "sentinel_regressed.json")
    args = ap.parse_args()

    base = os.path.join(args.fixtures, "sentinel_base.json")
    regressed = os.path.join(args.fixtures, "sentinel_regressed.json")
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as empty:
        empty.write('{"benchmark": "dynp obs sentinel", "sentinel": {}}\n')
        keyless = empty.name
    try:
        failures = 0
        for label, to, want in (("clean (base vs base)", base, 0),
                                ("regression injected", regressed, 2),
                                ("no gateable keys", keyless, 1)):
            got = gate(args.bench_report, base, to)
            if got != want:
                print(f"sentinel_gate_test: FAIL: {label}: exit {got}, "
                      f"expected {want}", file=sys.stderr)
                failures += 1
            else:
                print(f"sentinel_gate_test: OK: {label} -> exit {got}")
        return 1 if failures else 0
    finally:
        os.unlink(keyless)


if __name__ == "__main__":
    sys.exit(main())
