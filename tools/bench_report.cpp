/// bench_report — end-to-end scheduler throughput report.
///
/// Runs a fixed set of macro scenarios (trace model x planner semantics x
/// scheduler) through `core::simulate`, measures wall time per run, and
/// writes the results as JSON (default: BENCH_planner.json, intended to be
/// checked in at the repo root so the numbers travel with the code they
/// measure). The first scenario — 10k KTH jobs through the self-tuning
/// replan scheduler — is the headline workload of the incremental planning
/// core; see DESIGN.md §7.
///
/// Examples:
///   bench_report                                # full run, BENCH_planner.json
///   bench_report --smoke                        # seconds-long sanity run
///   bench_report --out /tmp/report.json
///   bench_report --baseline-seconds 14.3        # record a reference time
///                                               # (e.g. the pre-optimisation
///                                               # build) for scenario #1
///
/// `--smoke` shrinks every scenario to a few hundred jobs so the binary
/// doubles as a ctest smoke target: it exercises every semantics and both
/// scheduler modes end to end in well under a minute.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "obs/obs.hpp"
#include "policies/policy.hpp"
#include "util/cli.hpp"
#include "workload/models.hpp"

namespace {

using namespace dynp;

struct Scenario {
  const char* name;
  const char* trace;      ///< trace model name (see workload::model_by_name)
  std::size_t jobs;       ///< full-run job count (--smoke shrinks it)
  const char* scheduler;  ///< dynp-advanced | fcfs | sjf
  const char* semantics;  ///< replan | guarantee | easy
  double factor;          ///< arrival shrinking factor
};

/// The first row is the acceptance workload of the incremental planning
/// work; the rest cover the remaining semantics and the queueing baseline.
constexpr Scenario kScenarios[] = {
    {"dynp_replan_kth_10k", "KTH", 10000, "dynp-advanced", "replan", 0.5},
    {"dynp_replan_ctc", "CTC", 2000, "dynp-advanced", "replan", 1.0},
    {"dynp_guarantee_kth", "KTH", 2000, "dynp-advanced", "guarantee", 0.5},
    {"static_sjf_replan_sdsc", "SDSC", 2000, "sjf", "replan", 1.0},
    {"queueing_easy_fcfs_kth", "KTH", 2000, "fcfs", "easy", 1.0},
};

[[nodiscard]] core::SimulationConfig make_config(const Scenario& s) {
  core::SimulationConfig config;
  if (std::string(s.scheduler) == "dynp-advanced") {
    config = core::dynp_config(core::make_advanced_decider());
  } else {
    config = core::static_config(policies::policy_by_name(s.scheduler));
  }
  const std::string semantics = s.semantics;
  config.semantics = semantics == "replan" ? core::PlannerSemantics::kReplan
                     : semantics == "guarantee"
                         ? core::PlannerSemantics::kGuarantee
                         : core::PlannerSemantics::kQueueingEasy;
  return config;
}

struct Row {
  const Scenario* scenario = nullptr;
  std::size_t jobs = 0;
  std::uint64_t events = 0;
  double seconds = 0;
  double events_per_sec = 0;
  double sldwa = 0;
  std::uint64_t decisions = 0;
  std::uint64_t switches = 0;
  std::string metrics_json;  ///< per-scenario obs::Registry snapshot
};

[[nodiscard]] Row run_scenario(const Scenario& s, std::size_t jobs) {
  const workload::JobSet set =
      workload::generate(workload::model_by_name(s.trace), jobs, 42)
          .with_shrinking_factor(s.factor);
  core::SimulationConfig config = make_config(s);

  // Per-scenario metrics (planner phase histograms, event/decision counters)
  // ride along in the report JSON. The scoped timers add single-digit
  // nanoseconds per phase; with -DDYNP_OBS=OFF the hooks are compiled out
  // and the embedded snapshot is all zeros.
  obs::Registry registry;
  obs::PhaseProfiler profiler(registry);
  config.instruments.registry = &registry;
  config.instruments.profiler = &profiler;

  const auto t0 = std::chrono::steady_clock::now();
  const core::SimulationResult r = core::simulate(set, config);
  const auto t1 = std::chrono::steady_clock::now();

  Row row;
  row.scenario = &s;
  row.jobs = jobs;
  row.events = r.events;
  row.seconds = std::chrono::duration<double>(t1 - t0).count();
  row.events_per_sec =
      row.seconds > 0 ? static_cast<double>(r.events) / row.seconds : 0.0;
  row.sldwa = r.summary.sldwa;
  row.decisions = r.decisions;
  row.switches = r.switches;
  std::ostringstream metrics;
  registry.write_json(metrics, 6);
  row.metrics_json = metrics.str();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "bench_report — end-to-end scheduler throughput (events/second) per "
      "trace model and planner semantics, written as JSON");
  cli.add_option("out", "BENCH_planner.json", "output JSON path");
  cli.add_option("baseline-seconds", "0",
                 "reference wall time for the first scenario (e.g. measured "
                 "on the pre-optimisation build); recorded with the implied "
                 "speedup when non-zero");
  cli.add_flag("smoke", "shrink every scenario to a fast sanity run");
  if (!cli.parse(argc, argv)) return 1;

  const bool smoke = cli.get_flag("smoke");
  const double baseline = cli.get_double("baseline-seconds");
  const std::string out_path = cli.get("out");

  std::printf("%-24s %6s %8s %9s %12s %8s\n", "scenario", "jobs", "events",
              "seconds", "events/sec", "SLDwA");
  std::vector<Row> rows;
  for (const Scenario& s : kScenarios) {
    const std::size_t jobs = smoke ? std::min<std::size_t>(s.jobs, 300) : s.jobs;
    const Row row = run_scenario(s, jobs);
    std::printf("%-24s %6zu %8llu %9.3f %12.0f %8.3f\n", s.name, row.jobs,
                static_cast<unsigned long long>(row.events), row.seconds,
                row.events_per_sec, row.sldwa);
    rows.push_back(row);
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"dynp macro simulation throughput\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out,
               "  \"note\": \"one simulate() per scenario, steady_clock wall "
               "time; seed 42 synthetic workloads\",\n");
  std::fprintf(out, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const Scenario& s = *r.scenario;
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"trace\": \"%s\", \"jobs\": %zu, "
        "\"scheduler\": \"%s\", \"semantics\": \"%s\", \"factor\": %g, "
        "\"events\": %llu, \"seconds\": %.3f, \"events_per_sec\": %.1f, "
        "\"sldwa\": %.4f, \"decisions\": %llu, \"switches\": %llu,\n"
        "     \"metrics\":\n%s}%s\n",
        s.name, s.trace, r.jobs, s.scheduler, s.semantics, s.factor,
        static_cast<unsigned long long>(r.events), r.seconds,
        r.events_per_sec, r.sldwa,
        static_cast<unsigned long long>(r.decisions),
        static_cast<unsigned long long>(r.switches), r.metrics_json.c_str(),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]");
  if (baseline > 0 && !rows.empty() && rows.front().seconds > 0) {
    std::fprintf(out,
                 ",\n  \"baseline\": {\"scenario\": \"%s\", \"seconds\": "
                 "%.3f, \"speedup\": %.2f}",
                 rows.front().scenario->name, baseline,
                 baseline / rows.front().seconds);
  }
  std::fprintf(out, "\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
