/// bench_report — end-to-end scheduler throughput report.
///
/// Runs a fixed set of macro scenarios (trace model x planner semantics x
/// scheduler) through `core::simulate`, measures wall time per run, and
/// writes the results as JSON (default: BENCH_planner.json, intended to be
/// checked in at the repo root so the numbers travel with the code they
/// measure). The first scenario — 10k KTH jobs through the self-tuning
/// replan scheduler — is the headline workload of the incremental planning
/// core; see DESIGN.md §7.
///
/// A second mode, `--sweep`, measures the experiment-grid layer instead of
/// one simulation: the mini paper sweep (2 traces x 5 factors x 4 configs x
/// N sets) is executed through the serial per-point barrier path
/// (`SweepRunner::run`), through the work-stealing `SweepOrchestrator` at
/// several thread counts, and against a cold-then-warm persistent point
/// cache; it verifies all paths produce bit-identical combined points and
/// writes BENCH_sweep.json. Because barrier-idle only costs wall time when
/// several workers exist, the report also contains a *projection* section:
/// the measured per-cell durations are deterministically list-scheduled
/// under barrier vs stealing discipline at simulated thread counts.
///
/// Examples:
///   bench_report                                # full run, BENCH_planner.json
///   bench_report --smoke                        # seconds-long sanity run
///   bench_report --out /tmp/report.json
///   bench_report --baseline-seconds 14.3        # record a reference time
///                                               # (e.g. the pre-optimisation
///                                               # build) for scenario #1
///   bench_report --sweep                        # grid report, BENCH_sweep.json
///   bench_report --sweep --smoke --check        # ctest: warm pass must hit
///                                               # >= 95% of points in cache
///   bench_report --compare-base old.json --compare-to new.json
///                                               # flag > 10% slowdowns
///
/// `--smoke` shrinks every scenario to a few hundred jobs so the binary
/// doubles as a ctest smoke target: it exercises every semantics and both
/// scheduler modes end to end in well under a minute.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/simulation.hpp"
#include "exp/experiment.hpp"
#include "exp/orchestrator.hpp"
#include "obs/obs.hpp"
#include "policies/policy.hpp"
#include "rms/profile.hpp"
#include "util/cli.hpp"
#include "workload/models.hpp"
#include "workload/swf.hpp"

namespace {

using namespace dynp;

// Run-metadata stamp baked in at configure time (see tools/CMakeLists.txt):
// the git SHA, compiler and build type travel with every BENCH_*.json so a
// committed report is attributable to the build that produced it. The SHA
// is HEAD of the last CMake configure — an incremental build can lag the
// work tree; CI configures fresh.
#if !defined(DYNP_BENCH_GIT_SHA)
#define DYNP_BENCH_GIT_SHA "unknown"
#endif
#if !defined(DYNP_BENCH_COMPILER)
#define DYNP_BENCH_COMPILER "unknown"
#endif
#if !defined(DYNP_BENCH_BUILD)
#define DYNP_BENCH_BUILD "unknown"
#endif

void write_meta(std::FILE* out) {
  std::fprintf(out,
               "  \"meta\": {\"git_sha\": \"%s\", \"compiler\": \"%s\", "
               "\"build\": \"%s\", \"obs\": %s},\n",
               DYNP_BENCH_GIT_SHA, DYNP_BENCH_COMPILER, DYNP_BENCH_BUILD,
               obs::kEnabled ? "true" : "false");
}

struct Scenario {
  const char* name;
  const char* trace;      ///< trace model name (see workload::model_by_name)
  std::size_t jobs;       ///< full-run job count (--smoke shrinks it)
  const char* scheduler;  ///< dynp-advanced | fcfs | sjf
  const char* semantics;  ///< replan | guarantee | easy
  double factor;          ///< arrival shrinking factor
  std::uint32_t machine_scale;  ///< workload::scale_machine factor (1 = off)
  const char* profile;    ///< resource-profile backend: tree | flat
};

/// The first row is the acceptance workload of the incremental planning
/// work; the middle rows cover the remaining semantics and the queueing
/// baseline; the final A/B pair is the federation-scale acceptance workload
/// of the hierarchical profile — 100k jobs on a 10000x KTH machine (1M
/// nodes) under guarantee semantics, where every submit searches and every
/// finish releases a reservation tail across tens of thousands of profile
/// segments. The tree backend must beat the flat linear scan by >= 5x
/// events/sec on this pair (bit-identical results; the differential suite
/// pins that, this pair re-checks it end to end via identical SLDwA).
constexpr Scenario kScenarios[] = {
    {"dynp_replan_kth_10k", "KTH", 10000, "dynp-advanced", "replan", 0.5, 1,
     "tree"},
    {"dynp_replan_ctc", "CTC", 2000, "dynp-advanced", "replan", 1.0, 1,
     "tree"},
    {"dynp_guarantee_kth", "KTH", 2000, "dynp-advanced", "guarantee", 0.5, 1,
     "tree"},
    {"static_sjf_replan_sdsc", "SDSC", 2000, "sjf", "replan", 1.0, 1, "tree"},
    {"queueing_easy_fcfs_kth", "KTH", 2000, "fcfs", "easy", 1.0, 1, "tree"},
    {"fcfs_guarantee_kth_x10k_100k", "KTH", 100000, "fcfs", "guarantee", 0.3,
     10000, "tree"},
    {"fcfs_guarantee_kth_x10k_100k_flat", "KTH", 100000, "fcfs", "guarantee",
     0.3, 10000, "flat"},
};

[[nodiscard]] core::SimulationConfig make_config(const Scenario& s) {
  core::SimulationConfig config;
  if (std::string(s.scheduler) == "dynp-advanced") {
    config = core::dynp_config(core::make_advanced_decider());
  } else {
    config = core::static_config(policies::policy_by_name(s.scheduler));
  }
  const std::string semantics = s.semantics;
  config.semantics = semantics == "replan" ? core::PlannerSemantics::kReplan
                     : semantics == "guarantee"
                         ? core::PlannerSemantics::kGuarantee
                         : core::PlannerSemantics::kQueueingEasy;
  return config;
}

struct Row {
  const Scenario* scenario = nullptr;
  std::size_t jobs = 0;
  std::uint64_t events = 0;
  double seconds = 0;
  double events_per_sec = 0;
  double sldwa = 0;
  std::uint64_t decisions = 0;
  std::uint64_t switches = 0;
  double segments_peak = 0;        ///< max base-profile segment count seen
  double base_profile_p999_us = 0; ///< p999 of the base-profile build phase
  std::string metrics_json;  ///< per-scenario obs::Registry snapshot
};

/// Restores the process-wide profile backend on scope exit so a flat A/B
/// scenario cannot leak its backend into the scenarios that follow it.
struct ProfileImplGuard {
  rms::ProfileImpl saved = rms::ResourceProfile::default_impl();
  ~ProfileImplGuard() { rms::ResourceProfile::set_default_impl(saved); }
};

[[nodiscard]] Row run_scenario(const Scenario& s, std::size_t jobs) {
  const workload::JobSet set =
      workload::generate(
          workload::scale_machine(workload::model_by_name(s.trace),
                                  s.machine_scale),
          jobs, 42)
          .with_shrinking_factor(s.factor);
  core::SimulationConfig config = make_config(s);

  const ProfileImplGuard impl_guard;
  rms::ResourceProfile::set_default_impl(std::string(s.profile) == "flat"
                                             ? rms::ProfileImpl::kFlat
                                             : rms::ProfileImpl::kTree);

  // Per-scenario metrics (planner phase histograms, event/decision counters)
  // ride along in the report JSON. The scoped timers add single-digit
  // nanoseconds per phase; with -DDYNP_OBS=OFF the hooks are compiled out
  // and the embedded snapshot is all zeros.
  obs::Registry registry;
  obs::PhaseProfiler profiler(registry);
  config.instruments.registry = &registry;
  config.instruments.profiler = &profiler;

  const auto t0 = std::chrono::steady_clock::now();
  const core::SimulationResult r = core::simulate(set, config);
  const auto t1 = std::chrono::steady_clock::now();

  Row row;
  row.scenario = &s;
  row.jobs = jobs;
  row.events = r.events;
  row.seconds = std::chrono::duration<double>(t1 - t0).count();
  row.events_per_sec =
      row.seconds > 0 ? static_cast<double>(r.events) / row.seconds : 0.0;
  row.sldwa = r.summary.sldwa;
  row.decisions = r.decisions;
  row.switches = r.switches;
  // `histogram()` is create-or-get keyed on (name, edges); passing the same
  // edges the simulation/profiler registered with returns their instances
  // (all-zero under -DDYNP_OBS=OFF, where the feed sites compile out).
  row.segments_peak =
      registry
          .histogram("planner.profile_segments",
                     obs::exponential_edges(1, 2, 14))
          .max();
  row.base_profile_p999_us =
      registry
          .histogram("phase.base_profile_us", obs::default_latency_edges_us())
          .quantile(0.999);
  std::ostringstream metrics;
  registry.write_json(metrics, 6);
  row.metrics_json = metrics.str();
  return row;
}

// ---------------------------------------------------------------------------
// Streaming-ingestion benchmark (the million-job SWF path)
// ---------------------------------------------------------------------------

struct IngestRow {
  std::size_t jobs = 0;          ///< jobs written to (and read back from) SWF
  double write_seconds = 0;
  double read_seconds = 0;
  double read_jobs_per_sec = 0;
  std::size_t chunk_bytes = 0;   ///< streaming-reader chunk size
  std::uintmax_t file_bytes = 0; ///< on-disk trace size
  bool round_trip_ok = false;    ///< read-back job count matches
};

/// Generates \p n_jobs KTH jobs, writes them as an SWF trace, then times
/// `read_swf_file`'s chunked streaming parse of it. Peak parser memory is
/// one chunk plus one carried line regardless of trace size — that bound,
/// not the throughput, is what makes the 1M-job path viable; the throughput
/// is recorded so regressions in the parser show up in the committed report.
[[nodiscard]] IngestRow run_ingest(std::size_t n_jobs) {
  const auto path = std::filesystem::temp_directory_path() /
                    "dynp_bench_ingest.swf";
  IngestRow row;
  row.jobs = n_jobs;
  row.chunk_bytes = workload::SwfReadOptions{}.chunk_bytes;

  workload::JobSet generated;
  workload::generate_ensemble_streamed(
      workload::kth_model(), 1, n_jobs, 42,
      [&generated](std::size_t, workload::JobSet&& set) {
        generated = std::move(set);
      });
  const workload::Machine machine = generated.machine();

  const auto w0 = std::chrono::steady_clock::now();
  const bool wrote = workload::write_swf_file(path.string(), generated);
  const auto w1 = std::chrono::steady_clock::now();
  row.write_seconds = std::chrono::duration<double>(w1 - w0).count();
  if (!wrote) return row;
  generated = workload::JobSet{};  // the reader must not benefit from it
  std::error_code ec;
  row.file_bytes = std::filesystem::file_size(path, ec);

  const auto r0 = std::chrono::steady_clock::now();
  const workload::SwfParseResult parsed =
      workload::read_swf_file(path.string(), machine);
  const auto r1 = std::chrono::steady_clock::now();
  row.read_seconds = std::chrono::duration<double>(r1 - r0).count();
  row.read_jobs_per_sec =
      row.read_seconds > 0
          ? static_cast<double>(parsed.set.size()) / row.read_seconds
          : 0.0;
  row.round_trip_ok =
      parsed.set.size() == n_jobs && parsed.skipped_records == 0;
  std::filesystem::remove(path, ec);
  return row;
}

// ---------------------------------------------------------------------------
// --sweep mode
// ---------------------------------------------------------------------------

/// The mini paper sweep of DESIGN.md §11: two traces, the five shrinking
/// factors, two static and two dynP schedulers.
[[nodiscard]] std::vector<workload::TraceModel> sweep_models() {
  return {workload::kth_model(), workload::ctc_model()};
}

[[nodiscard]] std::vector<core::SimulationConfig> sweep_configs() {
  return {core::static_config(policies::PolicyKind::kFcfs),
          core::static_config(policies::PolicyKind::kSjf),
          core::dynp_config(core::make_advanced_decider()),
          core::dynp_config(exp::sjf_preferred_decider())};
}

/// One measured execution of the grid.
struct SweepRow {
  std::string name;
  const char* mode = "";   ///< serial-barrier | orchestrator | cache
  std::size_t threads = 0;
  std::size_t cells = 0;   ///< set-simulations actually run
  double seconds = 0;
  double cells_per_sec = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::uint64_t stolen_cells = 0;
  double hit_rate = 0;
};

[[nodiscard]] SweepRow finish_row(SweepRow row) {
  row.cells_per_sec =
      row.seconds > 0 ? static_cast<double>(row.cells) / row.seconds : 0.0;
  const std::size_t points = row.cache_hits + row.cache_misses;
  row.hit_rate = points > 0
                     ? static_cast<double>(row.cache_hits) /
                           static_cast<double>(points)
                     : 0.0;
  return row;
}

/// Exact comparison: a warm cache load and any thread count must reproduce
/// the serial points bit for bit, so `==` (not a tolerance) is the contract.
[[nodiscard]] bool points_identical(const std::vector<exp::CombinedPoint>& a,
                                    const std::vector<exp::CombinedPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const exp::CombinedPoint& x = a[i];
    const exp::CombinedPoint& y = b[i];
    if (x.sldwa != y.sldwa || x.utilization != y.utilization ||
        x.sldwa_stddev != y.sldwa_stddev ||
        x.util_stddev != y.util_stddev ||
        x.avg_bounded_slowdown != y.avg_bounded_slowdown ||
        x.avg_response != y.avg_response || x.switches != y.switches ||
        x.decisions != y.decisions || x.sldwa_per_set != y.sldwa_per_set ||
        x.util_per_set != y.util_per_set) {
      return false;
    }
  }
  return true;
}

/// Greedy in-order list schedule of \p durations onto \p threads workers
/// (each cell goes to the least-loaded worker); returns the makespan. This
/// is how eager workers drain a shared list, so it projects both
/// disciplines from the same measured per-cell durations.
[[nodiscard]] double list_schedule_makespan(const std::vector<double>& durations,
                                            std::size_t threads) {
  std::vector<double> load(std::max<std::size_t>(1, threads), 0.0);
  for (const double d : durations) {
    *std::min_element(load.begin(), load.end()) += d;
  }
  return *std::max_element(load.begin(), load.end());
}

struct Projection {
  std::size_t threads = 0;
  double barrier_seconds = 0;    ///< sum of per-point makespans
  double stealing_seconds = 0;   ///< one global list, no barriers
  double speedup = 0;
};

[[nodiscard]] Projection project(
    const std::vector<std::vector<double>>& cell_seconds_per_point,
    std::size_t threads) {
  Projection p;
  p.threads = threads;
  std::vector<double> all;
  for (const auto& point : cell_seconds_per_point) {
    p.barrier_seconds += list_schedule_makespan(point, threads);
    all.insert(all.end(), point.begin(), point.end());
  }
  p.stealing_seconds = list_schedule_makespan(all, threads);
  p.speedup =
      p.stealing_seconds > 0 ? p.barrier_seconds / p.stealing_seconds : 0.0;
  return p;
}

int run_sweep_report(bool smoke, bool check, const std::string& out_path,
                     std::string cache_dir) {
  const std::vector<workload::TraceModel> models = sweep_models();
  const std::vector<core::SimulationConfig> configs = sweep_configs();
  const std::vector<double> factors = exp::paper_shrinking_factors();
  const exp::ExperimentScale scale{smoke ? 3u : 10u, smoke ? 200u : 600u, 42};
  const std::size_t points =
      models.size() * factors.size() * configs.size();
  const std::size_t cells = points * scale.sets;
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  const bool own_cache = cache_dir.empty();
  if (own_cache) {
    cache_dir = (std::filesystem::temp_directory_path() /
                 "dynp_bench_sweep_cache")
                    .string();
    std::error_code ec;
    std::filesystem::remove_all(cache_dir, ec);  // guarantee a cold start
  }

  std::printf("sweep grid: %zu traces x %zu factors x %zu configs x %zu sets "
              "= %zu cells (%zu jobs/set, host threads: %zu)\n\n",
              models.size(), factors.size(), configs.size(), scale.sets,
              cells, scale.jobs, hw);

  std::vector<SweepRow> rows;
  bool identical = true;

  // Warm-up pass (untimed): stabilises CPU frequency, page cache and
  // allocator state so run order does not bias the comparison below.
  {
    exp::OrchestratorOptions options;
    options.threads = 1;
    exp::SweepOrchestrator warmup(models, scale, options);
    (void)warmup.run_grid(factors, configs);
  }

  // 1. The pre-orchestrator discipline: one SweepRunner per trace, one
  //    barrier per point, at 1 and (if distinct) hw threads.
  std::vector<exp::CombinedPoint> serial_points;
  for (const std::size_t threads :
       hw > 1 ? std::vector<std::size_t>{1, hw} : std::vector<std::size_t>{1}) {
    std::vector<exp::CombinedPoint> result;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& model : models) {
      const exp::SweepRunner runner(model, scale);
      for (const double factor : factors) {
        for (const auto& config : configs) {
          result.push_back(runner.run(factor, config, threads));
        }
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    SweepRow row;
    row.name = "serial_barrier_t" + std::to_string(threads);
    row.mode = "serial-barrier";
    row.threads = threads;
    row.cells = cells;
    row.cache_misses = points;
    row.seconds = std::chrono::duration<double>(t1 - t0).count();
    rows.push_back(finish_row(row));
    if (serial_points.empty()) {
      serial_points = std::move(result);
    } else {
      identical = identical && points_identical(serial_points, result);
    }
  }

  // 2. Instrumented serial pass: per-cell durations feed the projection;
  //    its wall time also isolates the workspace-reuse win (same barrier
  //    discipline as run 1 at one thread, zero per-cell allocation).
  std::vector<std::vector<double>> cell_seconds;
  {
    std::vector<exp::CombinedPoint> result;
    exp::SweepWorkspace workspace;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& model : models) {
      const auto ensemble = workload::generate_ensemble(model, scale.sets,
                                                        scale.jobs, scale.seed);
      for (const double factor : factors) {
        for (const auto& config : configs) {
          std::vector<core::SimulationResult> results(scale.sets);
          std::vector<double>& durations = cell_seconds.emplace_back();
          for (std::size_t s = 0; s < scale.sets; ++s) {
            const auto c0 = std::chrono::steady_clock::now();
            results[s] = exp::simulate_sweep_cell(ensemble[s], factor, config,
                                                  s, &workspace);
            const auto c1 = std::chrono::steady_clock::now();
            durations.push_back(
                std::chrono::duration<double>(c1 - c0).count());
          }
          result.push_back(exp::combine_results(results));
        }
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    SweepRow row;
    row.name = "workspace_serial_t1";
    row.mode = "serial-barrier";
    row.threads = 1;
    row.cells = cells;
    row.cache_misses = points;
    row.seconds = std::chrono::duration<double>(t1 - t0).count();
    rows.push_back(finish_row(row));
    identical = identical && points_identical(serial_points, result);
  }

  // 3. The orchestrator (no cache) at 1 / 2 / 4 threads. The shared
  //    registry aggregates across the three runs; its snapshot (decision /
  //    plan latency and queue-depth series from inside the cells, plus the
  //    per-cell `sweep.cell_us` series merged in worker-index order) is
  //    embedded in the report below.
  obs::Registry sweep_registry;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    exp::OrchestratorOptions options;
    options.registry = &sweep_registry;
    options.threads = threads;
    exp::SweepOrchestrator orchestrator(models, scale, options);
    const exp::SweepGrid grid = orchestrator.run_grid(factors, configs);
    const exp::SweepStats& s = orchestrator.stats();
    SweepRow row;
    row.name = "orchestrator_t" + std::to_string(threads);
    row.mode = "orchestrator";
    row.threads = threads;
    row.cells = s.cells_simulated;
    row.seconds = s.seconds;
    row.cache_misses = s.cache_misses;
    row.stolen_cells = s.stolen_tasks;
    rows.push_back(finish_row(row));
    identical = identical && points_identical(serial_points, grid.points);
  }

  // 4. The persistent cache: one cold pass (stores every point), one warm
  //    pass (everything loads, nothing simulates).
  double cold_seconds = 0;
  double warm_seconds = 0;
  double warm_hit_rate = 0;
  {
    exp::OrchestratorOptions options;
    options.threads = 1;
    options.cache_dir = cache_dir;
    exp::SweepOrchestrator orchestrator(models, scale, options);
    for (const char* name : {"cache_cold_t1", "cache_warm_t1"}) {
      const exp::SweepGrid grid = orchestrator.run_grid(factors, configs);
      const exp::SweepStats& s = orchestrator.stats();
      SweepRow row;
      row.name = name;
      row.mode = "cache";
      row.threads = 1;
      row.cells = s.cells_simulated;
      row.seconds = s.seconds;
      row.cache_hits = s.cache_hits;
      row.cache_misses = s.cache_misses;
      row.stolen_cells = s.stolen_tasks;
      rows.push_back(finish_row(row));
      identical = identical && points_identical(serial_points, grid.points);
      if (rows.back().name == "cache_cold_t1") {
        cold_seconds = s.seconds;
      } else {
        warm_seconds = s.seconds;
        warm_hit_rate = rows.back().hit_rate;
      }
    }
  }
  if (own_cache) {
    std::error_code ec;
    std::filesystem::remove_all(cache_dir, ec);
  }

  std::printf("%-22s %-15s %3s %6s %9s %12s %8s %7s\n", "run", "mode", "thr",
              "cells", "seconds", "cells/sec", "hits", "stolen");
  for (const SweepRow& r : rows) {
    std::printf("%-22s %-15s %3zu %6zu %9.3f %12.1f %8zu %7llu\n",
                r.name.c_str(), r.mode, r.threads, r.cells, r.seconds,
                r.cells_per_sec, r.cache_hits,
                static_cast<unsigned long long>(r.stolen_cells));
  }

  const std::vector<Projection> projections = {
      project(cell_seconds, 4), project(cell_seconds, 8),
      project(cell_seconds, 16)};
  std::printf("\nbarrier-idle projection from measured per-cell durations:\n");
  for (const Projection& p : projections) {
    std::printf("  %2zu threads: barrier %.3fs vs stealing %.3fs -> %.2fx\n",
                p.threads, p.barrier_seconds, p.stealing_seconds, p.speedup);
  }

  const double serial_t1 = rows.front().seconds;
  double orch_t1 = 0;
  for (const SweepRow& r : rows) {
    if (r.name == "orchestrator_t1") orch_t1 = r.seconds;
  }
  const double warm_speedup =
      warm_seconds > 0 ? cold_seconds / warm_seconds : 0.0;
  std::printf("\nresults bit-identical across all paths: %s\n",
              identical ? "yes" : "NO");
  std::printf("orchestrator vs serial barrier (1 thread, measured): %.2fx\n",
              orch_t1 > 0 ? serial_t1 / orch_t1 : 0.0);
  std::printf("cache warm vs cold: %.1fx (hit rate %.1f%%)\n", warm_speedup,
              warm_hit_rate * 100);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"dynp sweep orchestration\",\n");
  write_meta(out);
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"host_threads\": %zu,\n", hw);
  std::fprintf(out,
               "  \"note\": \"serial-barrier = per-point SweepRunner::run; "
               "orchestrator = one work-stealing cell list; all paths "
               "verified bit-identical. On hosts with few cores the measured "
               "orchestrator gain is workspace reuse and hoisted config "
               "clones only; the projection section list-schedules the "
               "measured per-cell durations under barrier vs stealing "
               "discipline at simulated thread counts.\",\n");
  std::fprintf(out,
               "  \"grid\": {\"traces\": %zu, \"factors\": %zu, \"configs\": "
               "%zu, \"sets\": %zu, \"jobs\": %zu, \"points\": %zu, "
               "\"cells\": %zu},\n",
               models.size(), factors.size(), configs.size(), scale.sets,
               scale.jobs, points, cells);
  std::fprintf(out, "  \"identical\": %s,\n", identical ? "true" : "false");
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"mode\": \"%s\", \"threads\": %zu, "
                 "\"cells\": %zu, \"seconds\": %.4f, \"cells_per_sec\": %.1f, "
                 "\"cache_hits\": %zu, \"cache_misses\": %zu, "
                 "\"stolen_cells\": %llu, \"hit_rate\": %.4f}%s\n",
                 r.name.c_str(), r.mode, r.threads, r.cells, r.seconds,
                 r.cells_per_sec, r.cache_hits, r.cache_misses,
                 static_cast<unsigned long long>(r.stolen_cells), r.hit_rate,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"projection\": [\n");
  for (std::size_t i = 0; i < projections.size(); ++i) {
    const Projection& p = projections[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"barrier_seconds\": %.4f, "
                 "\"stealing_seconds\": %.4f, \"speedup\": %.2f}%s\n",
                 p.threads, p.barrier_seconds, p.stealing_seconds, p.speedup,
                 i + 1 < projections.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  {
    std::ostringstream metrics;
    sweep_registry.write_json(metrics, 2);
    std::fprintf(out, "  \"metrics\":\n%s,\n", metrics.str().c_str());
  }
  std::fprintf(out,
               "  \"speedup_warm_vs_cold\": %.1f,\n  \"warm_hit_rate\": %.4f"
               "\n}\n",
               warm_speedup, warm_hit_rate);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: combined points differ between execution paths\n");
    return 2;
  }
  if (check && warm_hit_rate < 0.95) {
    std::fprintf(stderr, "FAIL: warm cache hit rate %.1f%% < 95%%\n",
                 warm_hit_rate * 100);
    return 2;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// --sentinel mode (BENCH_obs.json + perf-regression gate)
// ---------------------------------------------------------------------------

/// Reads a whole file, or nullopt when it cannot be opened.
[[nodiscard]] std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// First number following `"key": ` in \p text, or nullopt. The sentinel
/// reports are written by this binary with one scalar per key, so a tag
/// scan is reliable (same approach as `parse_run_seconds`).
[[nodiscard]] std::optional<double> find_number(const std::string& text,
                                                const std::string& key) {
  const std::string tag = "\"" + key + "\": ";
  const std::size_t pos = text.find(tag);
  if (pos == std::string::npos) return std::nullopt;
  return std::strtod(text.c_str() + pos + tag.size(), nullptr);
}

/// The latency series the sentinel gates on (queue depth is deterministic
/// and not a latency, so it is reported but never gated).
constexpr const char* kSentinelSeries[] = {"decision_latency_us",
                                           "plan_latency_us"};

/// One summarised series in the "sentinel" block of BENCH_obs.json.
void write_sentinel_series(std::FILE* out, const char* prefix,
                           const obs::WindowedSeries* series, bool last) {
  const obs::WindowAggregate t =
      series != nullptr ? series->total() : obs::WindowAggregate{};
  std::fprintf(out,
               "    \"%s_count\": %llu, \"%s_p50\": %.3f, \"%s_p95\": %.3f, "
               "\"%s_p99\": %.3f, \"%s_p999\": %.3f, \"%s_max\": %.3f%s\n",
               prefix, static_cast<unsigned long long>(t.count), prefix, t.p50,
               prefix, t.p95, prefix, t.p99, prefix, t.p999, prefix, t.max,
               last ? "" : ",");
}

/// Compares the gated p99 keys of two sentinel reports; > 10% slower fails.
/// Shared by `--sentinel --check` (fresh run vs committed baseline) and the
/// pure file-vs-file mode (`--sentinel --compare-base --compare-to`), which
/// the regression-gate ctest drives with committed fixtures.
int compare_sentinel_texts(const std::string& base_text,
                           const std::string& to_text) {
  std::printf("%-24s %12s %12s %8s\n", "series", "base p99", "new p99",
              "delta");
  std::size_t regressions = 0;
  std::size_t compared = 0;
  for (const char* series : kSentinelSeries) {
    const std::string key = std::string(series) + "_p99";
    const auto base = find_number(base_text, key);
    const auto to = find_number(to_text, key);
    if (!base || !to || *base <= 0) continue;
    ++compared;
    const double delta = *to / *base - 1.0;
    const bool regressed = delta > 0.10;
    if (regressed) ++regressions;
    std::printf("%-24s %12.3f %12.3f %+7.1f%%%s\n", series, *base, *to,
                delta * 100, regressed ? "  <-- REGRESSION" : "");
  }
  if (compared == 0) {
    // A baseline that predates the sentinel block (older report schema)
    // carries no *_p99 keys. When the candidate has them, the baseline is
    // merely old, not broken: warn and degrade to the wall-clock "seconds"
    // key both schemas carry, passing when even that is absent. Exit 1
    // stays reserved for a candidate that itself lacks the gate keys — a
    // broken fresh run must never slip through as "old baseline".
    bool candidate_has_keys = false;
    for (const char* series : kSentinelSeries) {
      if (find_number(to_text, std::string(series) + "_p99")) {
        candidate_has_keys = true;
        break;
      }
    }
    if (!candidate_has_keys) {
      std::fprintf(stderr, "no gateable p99 keys found in both reports\n");
      return 1;
    }
    std::fprintf(stderr,
                 "warning: baseline has no sentinel p99 keys (pre-sentinel "
                 "report schema); degrading to the wall-clock gate\n");
    const auto base_s = find_number(base_text, "seconds");
    const auto to_s = find_number(to_text, "seconds");
    if (!base_s || !to_s || *base_s <= 0) {
      std::fprintf(stderr,
                   "warning: no comparable \"seconds\" key either; nothing "
                   "left to gate on — passing\n");
      return 0;
    }
    const double delta = *to_s / *base_s - 1.0;
    std::printf("%-24s %12.3f %12.3f %+7.1f%%%s\n", "seconds", *base_s, *to_s,
                delta * 100, delta > 0.10 ? "  <-- REGRESSION" : "");
    if (delta > 0.10) {
      std::fprintf(stderr, "wall-clock seconds regressed by more than 10%%\n");
      return 2;
    }
    std::printf("no regression above 10%% (degraded wall-clock gate)\n");
    return 0;
  }
  if (regressions > 0) {
    std::fprintf(stderr, "%zu series regressed by more than 10%% at p99\n",
                 regressions);
    return 2;
  }
  std::printf("no p99 regressions above 10%% (%zu series compared)\n",
              compared);
  return 0;
}

/// Runs the headline scenario (10k KTH jobs through the self-tuning replan
/// scheduler) with the windowed time series wired, writes BENCH_obs.json
/// (run metadata, p50/p95/p99/p999 decision/plan-latency summary, the full
/// registry snapshot with the per-window series), and — with `--check` —
/// gates the p99 latencies against a committed baseline report.
int run_obs_sentinel(bool smoke, bool check, const std::string& out_path,
                     const std::string& baseline_path) {
  const Scenario& s = kScenarios[0];
  const std::size_t jobs = smoke ? std::min<std::size_t>(s.jobs, 300) : s.jobs;
  if (!obs::kEnabled) {
    std::fprintf(stderr,
                 "warning: built with -DDYNP_OBS=OFF; the sentinel series "
                 "will be empty\n");
  }
  const workload::JobSet set =
      workload::generate(workload::model_by_name(s.trace), jobs, 42)
          .with_shrinking_factor(s.factor);
  core::SimulationConfig config = make_config(s);
  obs::Registry registry;
  config.instruments.registry = &registry;

  const auto t0 = std::chrono::steady_clock::now();
  const core::SimulationResult r = core::simulate(set, config);
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();

  const obs::WindowedSeries* decision =
      registry.find_series("series.decision_latency_us");
  const obs::WindowedSeries* plan =
      registry.find_series("series.plan_latency_us");
  const obs::WindowedSeries* depth =
      registry.find_series("series.queue_depth");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"dynp obs sentinel\",\n");
  write_meta(out);
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out,
               "  \"note\": \"windowed time-series telemetry of the headline "
               "scenario; keys are event ordinals (deterministic windows), "
               "values are wall-clock self-measurements. The *_p99 keys in "
               "'sentinel' are the regression gate: --check fails when they "
               "exceed the committed baseline by more than 10%%.\",\n");
  std::fprintf(out,
               "  \"scenario\": {\"name\": \"%s\", \"trace\": \"%s\", "
               "\"jobs\": %zu, \"scheduler\": \"%s\", \"semantics\": \"%s\", "
               "\"factor\": %g},\n",
               s.name, s.trace, jobs, s.scheduler, s.semantics, s.factor);
  std::fprintf(out, "  \"events\": %llu,\n",
               static_cast<unsigned long long>(r.events));
  std::fprintf(out, "  \"seconds\": %.3f,\n", seconds);
  std::fprintf(out, "  \"sentinel\": {\n");
  write_sentinel_series(out, "decision_latency_us", decision, false);
  write_sentinel_series(out, "plan_latency_us", plan, false);
  write_sentinel_series(out, "queue_depth", depth, true);
  std::fprintf(out, "  },\n");
  {
    std::ostringstream metrics;
    registry.write_json(metrics, 2);
    std::fprintf(out, "  \"metrics\":\n%s\n", metrics.str().c_str());
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  if (decision != nullptr) {
    const obs::WindowAggregate t = decision->total();
    std::printf("decision latency (us): n=%llu p50=%.1f p99=%.1f p999=%.1f\n",
                static_cast<unsigned long long>(t.count), t.p50, t.p99,
                t.p999);
  }

  if (!check) return 0;
  if (baseline_path.empty()) {
    std::fprintf(stderr,
                 "--sentinel --check needs --sentinel-baseline <report>\n");
    return 1;
  }
  const auto base_text = read_file(baseline_path);
  if (!base_text) {
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
    return 1;
  }
  const auto to_text = read_file(out_path);
  if (!to_text) {
    std::fprintf(stderr, "cannot re-read %s\n", out_path.c_str());
    return 1;
  }
  return compare_sentinel_texts(*base_text, *to_text);
}

// ---------------------------------------------------------------------------
// --compare mode
// ---------------------------------------------------------------------------

/// Pulls (name, seconds) pairs out of a report's "runs" array. The reports
/// are written by this binary, so a tag scan is reliable enough.
[[nodiscard]] std::vector<std::pair<std::string, double>> parse_run_seconds(
    const std::string& text) {
  std::vector<std::pair<std::string, double>> out;
  const std::string name_tag = "\"name\": \"";
  const std::string seconds_tag = "\"seconds\": ";
  std::size_t pos = 0;
  while ((pos = text.find(name_tag, pos)) != std::string::npos) {
    const std::size_t name_begin = pos + name_tag.size();
    const std::size_t name_end = text.find('"', name_begin);
    if (name_end == std::string::npos) break;
    const std::size_t next = text.find(name_tag, name_end);
    const std::size_t sec = text.find(seconds_tag, name_end);
    if (sec != std::string::npos && (next == std::string::npos || sec < next)) {
      out.emplace_back(
          text.substr(name_begin, name_end - name_begin),
          std::strtod(text.c_str() + sec + seconds_tag.size(), nullptr));
    }
    pos = name_end;
  }
  return out;
}

int run_compare(const std::string& base_path, const std::string& to_path) {
  const auto read = [](const std::string& path) -> std::optional<std::string> {
    std::ifstream in(path);
    if (!in) return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const auto base_text = read(base_path);
  const auto to_text = read(to_path);
  if (!base_text || !to_text) {
    std::fprintf(stderr, "cannot read %s\n",
                 !base_text ? base_path.c_str() : to_path.c_str());
    return 1;
  }
  const auto base = parse_run_seconds(*base_text);
  const auto to = parse_run_seconds(*to_text);

  std::printf("%-24s %10s %10s %8s\n", "run", "base [s]", "new [s]", "delta");
  std::size_t regressions = 0;
  std::size_t compared = 0;
  for (const auto& [name, base_seconds] : base) {
    for (const auto& [to_name, to_seconds] : to) {
      if (to_name != name) continue;
      ++compared;
      const double delta =
          base_seconds > 0 ? to_seconds / base_seconds - 1.0 : 0.0;
      const bool regressed = delta > 0.10;
      if (regressed) ++regressions;
      std::printf("%-24s %10.4f %10.4f %+7.1f%%%s\n", name.c_str(),
                  base_seconds, to_seconds, delta * 100,
                  regressed ? "  <-- REGRESSION" : "");
      break;
    }
  }
  if (compared == 0) {
    std::fprintf(stderr, "no runs with matching names between the reports\n");
    return 1;
  }
  if (regressions > 0) {
    std::fprintf(stderr, "%zu run(s) regressed by more than 10%%\n",
                 regressions);
    return 2;
  }
  std::printf("no regressions above 10%% (%zu runs compared)\n", compared);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "bench_report — end-to-end scheduler throughput (events/second) per "
      "trace model and planner semantics, written as JSON");
  cli.add_option("out", "BENCH_planner.json", "output JSON path");
  cli.add_option("baseline-seconds", "0",
                 "reference wall time for the first scenario (e.g. measured "
                 "on the pre-optimisation build); recorded with the implied "
                 "speedup when non-zero");
  cli.add_flag("smoke", "shrink every scenario to a fast sanity run");
  cli.add_flag("sweep",
               "measure the experiment-grid layer (serial barrier vs "
               "work-stealing orchestrator vs point cache) instead of "
               "single simulations; writes BENCH_sweep.json");
  cli.add_flag("check",
               "with --sweep: fail unless the warm cache pass hits >= 95% "
               "of points and all paths are bit-identical; with --sentinel: "
               "fail on a > 10% p99 latency regression vs the baseline");
  cli.add_flag("sentinel",
               "run the headline scenario with windowed time-series "
               "telemetry and write the latency-percentile report "
               "(BENCH_obs.json); combine with --check + "
               "--sentinel-baseline to gate, or with --compare-base/"
               "--compare-to to diff two existing reports");
  cli.add_option("sentinel-baseline", "",
                 "committed BENCH_obs.json to gate against with --sentinel "
                 "--check");
  cli.add_option("cache-dir", "",
                 "with --sweep: persistent cache directory (default: a "
                 "fresh temp directory, removed afterwards)");
  cli.add_option("compare-base", "",
                 "baseline BENCH_sweep.json for --compare mode");
  cli.add_option("compare-to", "",
                 "candidate BENCH_sweep.json: runs slower than the baseline "
                 "by more than 10% fail the comparison");
  if (!cli.parse(argc, argv)) return 1;

  if (!cli.get("compare-base").empty() || !cli.get("compare-to").empty()) {
    if (cli.get("compare-base").empty() || cli.get("compare-to").empty()) {
      std::fprintf(stderr,
                   "--compare-base and --compare-to must be given together\n");
      return 1;
    }
    if (cli.get_flag("sentinel")) {
      const auto base_text = read_file(cli.get("compare-base"));
      const auto to_text = read_file(cli.get("compare-to"));
      if (!base_text || !to_text) {
        std::fprintf(stderr, "cannot read %s\n",
                     !base_text ? cli.get("compare-base").c_str()
                                : cli.get("compare-to").c_str());
        return 1;
      }
      return compare_sentinel_texts(*base_text, *to_text);
    }
    return run_compare(cli.get("compare-base"), cli.get("compare-to"));
  }

  const bool smoke = cli.get_flag("smoke");
  const double baseline = cli.get_double("baseline-seconds");
  std::string out_path = cli.get("out");

  if (cli.get_flag("sentinel")) {
    if (out_path == "BENCH_planner.json") out_path = "BENCH_obs.json";
    return run_obs_sentinel(smoke, cli.get_flag("check"), out_path,
                            cli.get("sentinel-baseline"));
  }

  if (cli.get_flag("sweep")) {
    if (out_path == "BENCH_planner.json") out_path = "BENCH_sweep.json";
    return run_sweep_report(smoke, cli.get_flag("check"), out_path,
                            cli.get("cache-dir"));
  }

  std::printf("%-34s %7s %8s %9s %12s %8s %9s %12s\n", "scenario", "jobs",
              "events", "seconds", "events/sec", "SLDwA", "seg_peak",
              "bp_p999_us");
  std::vector<Row> rows;
  for (const Scenario& s : kScenarios) {
    const std::size_t jobs = smoke ? std::min<std::size_t>(s.jobs, 300) : s.jobs;
    const Row row = run_scenario(s, jobs);
    std::printf("%-34s %7zu %8llu %9.3f %12.0f %8.3f %9.0f %12.1f\n", s.name,
                row.jobs, static_cast<unsigned long long>(row.events),
                row.seconds, row.events_per_sec, row.sldwa, row.segments_peak,
                row.base_profile_p999_us);
    rows.push_back(row);
  }

  // The streaming-ingestion leg: 1M jobs through write_swf + the chunked
  // reader. Smoke keeps it to a few thousand jobs so the ctest target stays
  // seconds-long.
  const IngestRow ingest = run_ingest(smoke ? 5000 : 1000000);
  std::printf(
      "swf_ingest_%s %zu jobs, %.1f MB: write %.3fs, streamed read %.3fs "
      "(%.0f jobs/sec, chunk %zu KB)%s\n",
      smoke ? "smoke" : "1m", ingest.jobs,
      static_cast<double>(ingest.file_bytes) / (1024.0 * 1024.0),
      ingest.write_seconds, ingest.read_seconds, ingest.read_jobs_per_sec,
      ingest.chunk_bytes / 1024, ingest.round_trip_ok ? "" : "  ROUND-TRIP MISMATCH");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"dynp macro simulation throughput\",\n");
  write_meta(out);
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out,
               "  \"note\": \"one simulate() per scenario, steady_clock wall "
               "time; seed 42 synthetic workloads\",\n");
  std::fprintf(out, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const Scenario& s = *r.scenario;
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"trace\": \"%s\", \"jobs\": %zu, "
        "\"scheduler\": \"%s\", \"semantics\": \"%s\", \"factor\": %g, "
        "\"machine_scale\": %u, \"profile\": \"%s\", "
        "\"events\": %llu, \"seconds\": %.3f, \"events_per_sec\": %.1f, "
        "\"sldwa\": %.4f, \"decisions\": %llu, \"switches\": %llu, "
        "\"segments_peak\": %.0f, \"base_profile_p999_us\": %.1f,\n"
        "     \"metrics\":\n%s}%s\n",
        s.name, s.trace, r.jobs, s.scheduler, s.semantics, s.factor,
        s.machine_scale, s.profile,
        static_cast<unsigned long long>(r.events), r.seconds,
        r.events_per_sec, r.sldwa,
        static_cast<unsigned long long>(r.decisions),
        static_cast<unsigned long long>(r.switches), r.segments_peak,
        r.base_profile_p999_us, r.metrics_json.c_str(),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(
      out,
      "  \"ingest\": {\"jobs\": %zu, \"file_bytes\": %llu, "
      "\"write_seconds\": %.3f, \"read_seconds\": %.3f, "
      "\"read_jobs_per_sec\": %.1f, \"chunk_bytes\": %zu, "
      "\"round_trip_ok\": %s}",
      ingest.jobs, static_cast<unsigned long long>(ingest.file_bytes),
      ingest.write_seconds, ingest.read_seconds, ingest.read_jobs_per_sec,
      ingest.chunk_bytes, ingest.round_trip_ok ? "true" : "false");
  if (baseline > 0 && !rows.empty() && rows.front().seconds > 0) {
    std::fprintf(out,
                 ",\n  \"baseline\": {\"scenario\": \"%s\", \"seconds\": "
                 "%.3f, \"speedup\": %.2f}",
                 rows.front().scenario->name, baseline,
                 baseline / rows.front().seconds);
  }
  std::fprintf(out, "\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
