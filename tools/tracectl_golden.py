#!/usr/bin/env python3
"""Golden-output test for dynp_tracectl lifecycle reconstruction.

Replays a fixed, seeded fault-injected run (KTH, 300 jobs, job-failure
injection with retries) through dynp_sim --trace-provenance, slices the
resulting trace with dynp_tracectl, and compares the output byte for byte
against the committed golden file. The sliced views are:

  * the full lifecycle of job 10, which fails on attempt 0 and finishes on
    attempt 1 — the requeue-after-failure chain (submit -> queue_insert ->
    wait -> run[job_fail] -> backoff -> queue_insert -> wait ->
    run[finished]) must reconstruct exactly;
  * the decider switch-streak report over the whole run.

Everything tracectl prints here derives from sim-time and event ordinals,
so the output is deterministic for a fixed workload. The workload itself
comes from the synthetic KTH model whose sampling goes through libm;
goldens are generated on the CI platform (Linux) via --update.

Usage:
  tracectl_golden.py --sim <dynp_sim> --tracectl <dynp_tracectl>
                     --golden <file> --workdir <dir> [--update]

Exit status 0 = output matches golden (or --update rewrote it);
1 = mismatch or a tool failed; 2 = usage error.
"""

import argparse
import difflib
import os
import subprocess
import sys

RUN_ARGS = ["--trace", "KTH", "--jobs", "300", "--seed", "7",
            "--factor", "0.5", "--scheduler", "dynp-advanced",
            "--faults", "--fault-seed", "11", "--job-fail-p", "0.05",
            "--max-retries", "2", "--trace-format", "jsonl",
            "--trace-provenance"]
SLICES = (["--job", "10"], ["--streaks"])


def run(cmd):
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT)
    text = proc.stdout.decode(errors="replace")
    if proc.returncode != 0:
        sys.stderr.write(text)
        print(f"tracectl_golden: FAIL: {' '.join(cmd)} exited "
              f"{proc.returncode}", file=sys.stderr)
        return None
    return text


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--sim", required=True, help="dynp_sim binary")
    ap.add_argument("--tracectl", required=True, help="dynp_tracectl binary")
    ap.add_argument("--golden", required=True, help="committed golden file")
    ap.add_argument("--workdir", default=".", help="scratch directory")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the golden file instead of comparing")
    args = ap.parse_args()

    os.makedirs(args.workdir, exist_ok=True)
    trace = os.path.join(args.workdir, "golden_trace.jsonl")
    if run([args.sim] + RUN_ARGS + ["--trace-out", trace]) is None:
        return 1

    parts = []
    for extra in SLICES:
        cmd = [args.tracectl, "--in", trace] + extra
        out = run(cmd)
        if out is None:
            return 1
        parts.append(f"$ dynp_tracectl {' '.join(extra)}\n{out}")
    actual = "\n".join(parts)

    if args.update:
        with open(args.golden, "w", encoding="utf-8") as f:
            f.write(actual)
        print(f"tracectl_golden: wrote {args.golden}")
        return 0

    with open(args.golden, encoding="utf-8") as f:
        expected = f.read()
    if actual == expected:
        print(f"tracectl_golden: OK: output matches {args.golden} "
              f"({len(actual.splitlines())} lines)")
        return 0
    sys.stderr.writelines(difflib.unified_diff(
        expected.splitlines(keepends=True), actual.splitlines(keepends=True),
        fromfile=args.golden, tofile="actual"))
    print("tracectl_golden: FAIL: output diverged from golden "
          "(regenerate with --update if the change is intended)",
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
