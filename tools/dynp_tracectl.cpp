/// dynp_tracectl — slice and summarise decision-provenance traces.
///
/// Consumes the JSONL traces written by `dynp_sim --trace-out run.trace
/// --trace-provenance` (see src/obs/provenance.hpp for the record schema)
/// and answers the questions a scheduler post-mortem starts with: what
/// happened to job N (its full span lifecycle, requeue chains included),
/// what did the decider do around event K, and how long did it stick with
/// each policy before switching.
///
/// Examples:
///   dynp_tracectl --in run.trace                      # whole-trace summary
///   dynp_tracectl --in run.trace --job 17             # one job's lifecycle
///   dynp_tracectl --in run.trace --timeline           # every job's lifecycle
///   dynp_tracectl --in run.trace --streaks            # decider switch streaks
///   dynp_tracectl --in run.trace --policy SJF --streaks
///   dynp_tracectl --in run.trace --seq-min 100 --seq-max 200 --spans
///
/// Only the JSONL encoding is supported: the Chrome encoding is for
/// chrome://tracing / Perfetto, which already are the slicing UI.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/cli.hpp"

namespace {

/// One parsed "jspan" record. Optional fields keep their sentinel when the
/// record omits them (the writer omits a key whenever it carries no info).
struct SpanRec {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint64_t trace = 0;
  std::uint64_t seq = 0;
  double t0 = 0;
  double t1 = 0;
  long long job = -1;
  long long attempt = -1;
  std::string outcome;
  double delay = -1;
  long long step = -1;
};

/// One parsed "jflow" record (commit -> run causality edge).
struct FlowRec {
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  std::uint64_t job = 0;
  std::uint64_t seq = 0;
  double t = 0;
};

/// Everything sliced out of one trace file.
struct Trace {
  std::vector<SpanRec> spans;
  std::vector<FlowRec> flows;
  std::size_t lines = 0;          ///< total lines read
  std::size_t other_records = 0;  ///< non-provenance records (tracer events)
};

[[nodiscard]] std::optional<double> find_number(const std::string& line,
                                                const char* key) {
  const std::string tag = std::string("\"") + key + "\": ";
  const std::size_t pos = line.find(tag);
  if (pos == std::string::npos) return std::nullopt;
  return std::strtod(line.c_str() + pos + tag.size(), nullptr);
}

[[nodiscard]] std::optional<std::string> find_string(const std::string& line,
                                                     const char* key) {
  const std::string tag = std::string("\"") + key + "\": \"";
  const std::size_t begin = line.find(tag);
  if (begin == std::string::npos) return std::nullopt;
  const std::size_t start = begin + tag.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return std::nullopt;
  return line.substr(start, end - start);
}

[[nodiscard]] std::uint64_t u64_or(const std::optional<double>& v,
                                   std::uint64_t fallback) {
  return v ? static_cast<std::uint64_t>(*v) : fallback;
}

/// Parses the provenance records out of a JSONL trace; every other record
/// type (the tracer's own scheduler events, metadata) is counted and
/// skipped, so mixed traces work.
[[nodiscard]] std::optional<Trace> read_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  Trace trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++trace.lines;
    if (trace.lines == 1 && line[0] == '[') {
      std::fprintf(stderr,
                   "%s looks like a Chrome trace; dynp_tracectl reads the "
                   "jsonl encoding (dynp_sim --trace-format jsonl)\n",
                   path.c_str());
      return std::nullopt;
    }
    const auto type = find_string(line, "type");
    if (type && *type == "jspan") {
      SpanRec s;
      const auto name = find_string(line, "name");
      if (!name) continue;
      s.name = *name;
      s.id = u64_or(find_number(line, "id"), 0);
      s.parent = u64_or(find_number(line, "parent"), 0);
      s.trace = u64_or(find_number(line, "trace"), 0);
      s.seq = u64_or(find_number(line, "seq"), 0);
      s.t0 = find_number(line, "t0").value_or(0);
      s.t1 = find_number(line, "t1").value_or(0);
      const auto job = find_number(line, "job");
      if (job) s.job = static_cast<long long>(*job);
      const auto attempt = find_number(line, "attempt");
      if (attempt) s.attempt = static_cast<long long>(*attempt);
      s.outcome = find_string(line, "outcome").value_or("");
      s.delay = find_number(line, "delay").value_or(-1);
      const auto step = find_number(line, "step");
      if (step) s.step = static_cast<long long>(*step);
      trace.spans.push_back(std::move(s));
    } else if (type && *type == "jflow") {
      FlowRec f;
      f.from = u64_or(find_number(line, "from"), 0);
      f.to = u64_or(find_number(line, "to"), 0);
      f.job = u64_or(find_number(line, "job"), 0);
      f.seq = u64_or(find_number(line, "seq"), 0);
      f.t = find_number(line, "t").value_or(0);
      trace.flows.push_back(f);
    } else {
      ++trace.other_records;
    }
  }
  return trace;
}

/// Formats one span as a stable single line (used by --spans and the
/// per-job timelines; golden tests compare this output byte for byte).
void print_span(const SpanRec& s, const char* indent) {
  std::printf("%sseq=%llu t0=%g t1=%g %s", indent,
              static_cast<unsigned long long>(s.seq), s.t0, s.t1,
              s.name.c_str());
  if (s.attempt >= 0) std::printf(" attempt=%lld", s.attempt);
  if (!s.outcome.empty()) std::printf(" outcome=%s", s.outcome.c_str());
  if (s.delay >= 0) std::printf(" delay=%g", s.delay);
  if (s.step >= 0) std::printf(" step=%lld", s.step);
  std::printf("\n");
}

/// One job's lifecycle: the root "job" span as the header, every child span
/// in id order (ids are allocated in open order, so this is chronological).
void print_job_timeline(long long job, std::vector<SpanRec> spans) {
  std::sort(spans.begin(), spans.end(),
            [](const SpanRec& a, const SpanRec& b) { return a.id < b.id; });
  const SpanRec* root = nullptr;
  for (const SpanRec& s : spans) {
    if (s.name == "job") root = &s;
  }
  if (root != nullptr) {
    std::printf("job %lld: outcome=%s attempts=%lld submit=%g end=%g "
                "spans=%zu\n",
                job, root->outcome.empty() ? "?" : root->outcome.c_str(),
                root->attempt, root->t0, root->t1, spans.size());
  } else {
    std::printf("job %lld: (no terminal span — job still open at end of "
                "trace) spans=%zu\n",
                job, spans.size());
  }
  for (const SpanRec& s : spans) {
    if (&s == root) continue;
    print_span(s, "  ");
  }
}

/// Decider switch streaks: consecutive tuning passes that kept the same
/// policy, reconstructed from the `decide:<policy>` spans in seq order.
void print_streaks(const std::vector<SpanRec>& spans,
                   const std::string& policy_filter) {
  struct Decision {
    std::uint64_t seq = 0;
    std::string policy;
    bool switched = false;
  };
  std::vector<Decision> decisions;
  for (const SpanRec& s : spans) {
    if (s.name.rfind("decide:", 0) != 0) continue;
    decisions.push_back(
        {s.seq, s.name.substr(std::strlen("decide:")), s.outcome == "switched"});
  }
  std::sort(decisions.begin(), decisions.end(),
            [](const Decision& a, const Decision& b) { return a.seq < b.seq; });
  std::size_t switches = 0;
  for (const Decision& d : decisions) {
    if (d.switched) ++switches;
  }
  std::printf("decider stream: %zu decisions, %zu switches\n",
              decisions.size(), switches);
  struct Streak {
    std::string policy;
    std::uint64_t from = 0;
    std::uint64_t to = 0;
    std::size_t length = 0;
  };
  std::vector<Streak> streaks;
  for (const Decision& d : decisions) {
    if (streaks.empty() || streaks.back().policy != d.policy) {
      streaks.push_back({d.policy, d.seq, d.seq, 1});
    } else {
      streaks.back().to = d.seq;
      ++streaks.back().length;
    }
  }
  std::map<std::string, std::size_t> longest;
  for (const Streak& s : streaks) {
    longest[s.policy] = std::max(longest[s.policy], s.length);
    if (!policy_filter.empty() && s.policy != policy_filter) continue;
    std::printf("  policy=%s from_seq=%llu to_seq=%llu decisions=%zu\n",
                s.policy.c_str(), static_cast<unsigned long long>(s.from),
                static_cast<unsigned long long>(s.to), s.length);
  }
  std::printf("longest streak per policy:\n");
  for (const auto& [policy, length] : longest) {
    std::printf("  %s %zu\n", policy.c_str(), length);
  }
}

void print_summary(const Trace& trace, const std::vector<SpanRec>& spans) {
  std::map<std::string, std::size_t> by_name;
  std::map<long long, std::size_t> jobs;
  std::size_t finished = 0;
  std::size_t dropped = 0;
  for (const SpanRec& s : spans) {
    // Group the policy-parameterised names so the table stays small.
    std::string key = s.name;
    if (key.rfind("decide:", 0) == 0) key = "decide:*";
    if (key.rfind("plan:", 0) == 0) key = "plan:*";
    ++by_name[key];
    if (s.job >= 0) ++jobs[s.job];
    if (s.name == "job") {
      if (s.outcome == "finished") ++finished;
      if (s.outcome == "dropped") ++dropped;
    }
  }
  std::printf("trace: %zu lines (%zu provenance spans, %zu flows, %zu other "
              "records)\n",
              trace.lines, spans.size(), trace.flows.size(),
              trace.other_records);
  std::printf("jobs: %zu seen, %zu finished, %zu dropped\n", jobs.size(),
              finished, dropped);
  std::printf("spans by name:\n");
  for (const auto& [name, count] : by_name) {
    std::printf("  %-16s %zu\n", name.c_str(), count);
  }
}

}  // namespace

int main(int argc, char** argv) {
  dynp::util::CliParser cli(
      "dynp_tracectl — slice decision-provenance traces (jsonl): per-job "
      "lifecycle timelines, decider switch streaks, event-range filters");
  cli.add_option("in", "", "input trace file (jsonl; required)");
  cli.add_option("job", "-1", "show the lifecycle timeline of this job id");
  cli.add_option("policy", "",
                 "restrict --streaks / --spans to this policy name (matches "
                 "decide:<name> and plan:<name> spans)");
  cli.add_option("seq-min", "0", "drop records before this event ordinal");
  cli.add_option("seq-max", "-1",
                 "drop records after this event ordinal (-1 = no limit)");
  cli.add_flag("timeline", "print every job's lifecycle timeline");
  cli.add_flag("streaks", "print decider switch streaks");
  cli.add_flag("spans", "dump the filtered spans verbatim");
  if (!cli.parse(argc, argv)) return 1;

  const std::string in_path = cli.get("in");
  if (in_path.empty()) {
    std::fprintf(stderr, "--in <trace.jsonl> is required\n");
    return 1;
  }
  const auto job_opt = cli.get_int_checked("job", -1, 1LL << 32);
  const auto seq_min_opt = cli.get_int_checked("seq-min", 0, 1LL << 62);
  const auto seq_max_opt = cli.get_int_checked("seq-max", -1, 1LL << 62);
  if (!job_opt || !seq_min_opt || !seq_max_opt) return 1;

  std::optional<Trace> trace = read_trace(in_path);
  if (!trace) {
    std::fprintf(stderr, "cannot read trace %s\n", in_path.c_str());
    return 1;
  }

  // --- event-range + policy slicing ---
  const std::uint64_t seq_min = static_cast<std::uint64_t>(*seq_min_opt);
  const std::uint64_t seq_max = *seq_max_opt < 0
                                    ? ~0ull
                                    : static_cast<std::uint64_t>(*seq_max_opt);
  const std::string policy = cli.get("policy");
  std::vector<SpanRec> spans;
  for (SpanRec& s : trace->spans) {
    if (s.seq < seq_min || s.seq > seq_max) continue;
    spans.push_back(std::move(s));
  }

  const long long job = *job_opt;
  if (job >= 0) {
    std::vector<SpanRec> job_spans;
    for (const SpanRec& s : spans) {
      if (s.job == job) job_spans.push_back(s);
    }
    if (job_spans.empty()) {
      std::fprintf(stderr, "no spans for job %lld in the selected range\n",
                   job);
      return 1;
    }
    print_job_timeline(job, std::move(job_spans));
    return 0;
  }

  if (cli.get_flag("timeline")) {
    std::map<long long, std::vector<SpanRec>> by_job;
    for (const SpanRec& s : spans) {
      if (s.job >= 0) by_job[s.job].push_back(s);
    }
    for (auto& [id, job_spans] : by_job) {
      print_job_timeline(id, std::move(job_spans));
    }
    return 0;
  }

  if (cli.get_flag("streaks")) {
    print_streaks(spans, policy);
    return 0;
  }

  if (cli.get_flag("spans")) {
    for (const SpanRec& s : spans) {
      if (!policy.empty() && s.name.rfind("decide:" + policy, 0) != 0 &&
          s.name.rfind("plan:" + policy, 0) != 0) {
        continue;
      }
      print_span(s, "");
    }
    return 0;
  }

  print_summary(*trace, spans);
  return 0;
}
