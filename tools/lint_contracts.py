#!/usr/bin/env python3
"""Repo-specific contract lint for the dynP scheduler sources.

Machine-enforces the invariant style the codebase relies on (see
docs/architecture.md, "Correctness tooling"):

  R1 contract-missing   Public mutating methods of classes declared in
                        src/rms, src/core, src/fault and src/exp — non-const
                        non-static methods,
                        plus static methods taking a non-const reference
                        (out-parameter style) — must check at least one
                        DYNP_EXPECTS / DYNP_ENSURES / DYNP_ASSERT /
                        DYNP_CHECK_CTX in their definition. Trivial bodies
                        (at most two statements, no loop) are exempt, as are
                        declarations carrying a `// lint: no-contract(<why>)`
                        waiver on or directly above the declaration.
  R2 naked-abort        No std::abort / abort( in src/ outside
                        util/assert.hpp — failures must route through the
                        contract machinery so the installable handler and
                        structured diagnostics apply.
  R3 naked-printf       No stdout printing (printf / std::printf / puts /
                        std::cout) in library code under src/; reporting
                        belongs to tools/, bench/ and examples/. (fprintf to
                        stderr and snprintf formatting stay allowed.)
  R4 unseeded-rng       No rand()/srand() and no default-constructed
                        standard engines (std::mt19937 etc.) in src/ —
                        determinism requires the seeded SplitMix/xoshiro
                        generators from util/rng.hpp.
  R5 banned-include     Hot-path headers (profile, planner, engine, event
                        queue, policy) must not pull in iostream-family or
                        cstdio headers.

Usage: lint_contracts.py [repo-root]                (exit 0 = clean, 1 = findings)
       lint_contracts.py --check-coverage [repo-root]
                         self-test: every src/ subdirectory wired into the
                         build (add_subdirectory in src/CMakeLists.txt) must
                         be walked by this lint, and every R1 contract dir
                         must be one of the built subdirectories.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

CONTRACT_RE = re.compile(r"\bDYNP_(EXPECTS|ENSURES|ASSERT|CHECK_CTX)\s*\(")
WAIVER = "lint: no-contract"

# R1 scope: the planning core, the scheduler core, the fault-injection
# layer and the sweep orchestration layer.
CONTRACT_DIRS = ("src/rms", "src/core", "src/fault", "src/exp", "src/ckpt")

# R5 scope and ban list.
HOT_HEADERS = (
    "src/rms/profile.hpp",
    "src/rms/planner.hpp",
    "src/sim/engine.hpp",
    "src/sim/event_queue.hpp",
    "src/policies/policy.hpp",
)
BANNED_INCLUDES = ("iostream", "fstream", "sstream", "iomanip", "regex",
                   "cstdio", "stdio.h")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving offsets/newlines."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j = j + 2 if text[j] == "\\" else j + 1
            for k in range(i, min(j + 1, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def match_brace(text: str, open_pos: int) -> int:
    """Position just past the brace matching text[open_pos] == '{'."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


CLASS_RE = re.compile(
    r"\b(class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^{;()]*)?\{")

# One method declaration/definition inside a class body. The params group
# has no nested parens anywhere in this codebase.
METHOD_RE = re.compile(
    r"(?P<prefix>[^;{}()]*?)"
    r"\b(?P<name>~?[A-Za-z_]\w*|operator\s*[^\s(]+)\s*"
    r"\((?P<params>[^()]*)\)\s*"
    r"(?P<qual>(?:const|noexcept|override|final|->\s*[\w:<>&\s]+|\s)*)"
    r"(?P<term>\{|;|=)")

ACCESS_RE = re.compile(r"\b(public|protected|private)\s*:")


def has_nonconst_ref_param(params: str) -> bool:
    for param in params.split(","):
        if "&" in param and not param.strip().startswith("const "):
            return True
    return False


def is_trivial_body(body: str) -> bool:
    return body.count(";") <= 2 and not re.search(r"\b(for|while)\s*\(", body)


def blank_nested_classes(body: str) -> str:
    """Blanks nested class/struct bodies so their methods are not attributed
    to the enclosing class (they are linted when their own match is visited).
    """
    out = body
    for m in CLASS_RE.finditer(body):
        open_pos = m.end() - 1
        end = match_brace(body, open_pos)
        out = out[: m.start()] + "".join(
            ch if ch == "\n" else " " for ch in body[m.start():end]
        ) + out[end:]
    return out


def find_cpp_definition(class_name: str, method: str,
                        cpp_texts: dict[Path, str]) -> str | None:
    pattern = re.compile(
        rf"\b{re.escape(class_name)}\s*::\s*{re.escape(method)}\s*\([^()]*\)"
        rf"[^;{{]*\{{")
    for text in cpp_texts.values():
        m = pattern.search(text)
        if m:
            open_pos = text.find("{", m.end() - 1)
            return text[open_pos:match_brace(text, open_pos)]
    return None


def lint_contracts_in(path: Path, raw: str, cpp_texts: dict[Path, str],
                      findings: list[Finding]) -> None:
    text = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()

    def is_waived(line: int) -> bool:
        for ln in (line, line - 1):
            if 1 <= ln <= len(raw_lines) and WAIVER in raw_lines[ln - 1]:
                return True
        return False

    for cm in CLASS_RE.finditer(text):
        kind, class_name = cm.group(1), cm.group(2)
        body_open = cm.end() - 1
        body_end = match_brace(text, body_open)
        body = blank_nested_classes(text[body_open + 1:body_end - 1])
        body_base = body_open + 1

        # Access regions: struct default public, class default private.
        access = "public" if kind == "struct" else "private"
        regions = []  # (start, end, access)
        last = 0
        for am in ACCESS_RE.finditer(body):
            regions.append((last, am.start(), access))
            access, last = am.group(1), am.end()
        regions.append((last, len(body), access))

        pos = 0
        while True:
            mm = METHOD_RE.search(body, pos)
            if mm is None:
                break
            name = mm.group("name")
            decl_line = line_of(text, body_base + mm.start("name"))
            term = mm.group("term")
            inline_body = None
            if term == "{":
                open_pos = body_base + mm.end() - 1
                end = match_brace(text, open_pos)
                inline_body = text[open_pos:end]
                pos = end - body_base
            elif term == "=":
                pos = mm.end()  # defaulted/deleted/pure virtual
                continue
            else:
                pos = mm.end()

            acc = next(a for s, e, a in regions
                       if s <= mm.start("name") < e)
            prefix = mm.group("prefix")
            qualifiers = mm.group("qual")
            is_static = bool(re.search(r"\bstatic\b", prefix))
            is_const = bool(re.search(r"\bconst\b", qualifiers))
            is_special = (name == class_name or name.startswith("~")
                          or name.startswith("operator"))
            # `name(...)` matches function *calls* too when scanning region
            # text loosely; require the prefix to look like a declaration
            # (ends with a type-ish token or is empty for ctors).
            looks_like_call = bool(re.search(r"[=.\->(,!&|+]\s*$", prefix))

            if (acc != "public" or is_special or is_const or looks_like_call):
                continue
            mutating = not is_static or has_nonconst_ref_param(
                mm.group("params"))
            if not mutating:
                continue

            if term == "=":
                continue
            definition = inline_body
            if definition is None:
                definition = find_cpp_definition(class_name, name, cpp_texts)
            if definition is None:
                continue  # declaration without a findable body (e.g. macro)
            if is_trivial_body(definition):
                continue
            if CONTRACT_RE.search(definition) or is_waived(decl_line):
                continue
            findings.append(Finding(
                path, decl_line, "contract-missing",
                f"public mutating method '{class_name}::{name}' checks no "
                f"DYNP_EXPECTS/DYNP_ASSERT contract (add one or waive with "
                f"'// {WAIVER}(<reason>)')"))


def lint_line_rules(path: Path, rel: str, raw: str,
                    findings: list[Finding]) -> None:
    text = strip_comments_and_strings(raw)
    in_assert_hpp = rel == "src/util/assert.hpp"
    for i, line in enumerate(text.splitlines(), start=1):
        if not in_assert_hpp:
            if re.search(r"\bstd\s*::\s*abort\s*\(|(?<![\w.])abort\s*\(",
                         line):
                findings.append(Finding(
                    path, i, "naked-abort",
                    "abort outside util/assert.hpp — fail through "
                    "DYNP_EXPECTS/DYNP_ASSERT so the contract handler and "
                    "structured diagnostics apply"))
            if re.search(r"(?<![\w.])(?:std\s*::\s*)?printf\s*\(|"
                         r"(?<![\w.])puts\s*\(|\bstd\s*::\s*cout\b", line):
                findings.append(Finding(
                    path, i, "naked-printf",
                    "stdout printing in library code — reporting belongs to "
                    "tools/, bench/ or examples/"))
        if re.search(r"(?<![\w.])(?:std\s*::\s*)?s?rand\s*\(", line):
            findings.append(Finding(
                path, i, "unseeded-rng",
                "rand()/srand() — use the seeded generators in util/rng.hpp"))
        if re.search(r"\bstd\s*::\s*(mt19937(?:_64)?|minstd_rand0?|"
                     r"default_random_engine)\s*(?:\w+\s*)?[;{(]\s*[)};]?\s*$",
                     line) and "(" not in line.split("std::")[-1].split(";")[0]:
            findings.append(Finding(
                path, i, "unseeded-rng",
                "default-constructed standard engine — seed explicitly via "
                "util/rng.hpp"))


def lint_hot_header_includes(path: Path, raw: str,
                             findings: list[Finding]) -> None:
    for i, line in enumerate(raw.splitlines(), start=1):
        m = re.match(r'\s*#\s*include\s*[<"]([^>"]+)[>"]', line)
        if m and m.group(1) in BANNED_INCLUDES:
            findings.append(Finding(
                path, i, "banned-include",
                f"<{m.group(1)}> in a hot-path header — keep I/O and "
                f"formatting out of the planning core"))


def built_src_subdirs(root: Path) -> list[str]:
    """Subdirectories src/CMakeLists.txt wires into the build."""
    cmakelists = root / "src" / "CMakeLists.txt"
    return re.findall(r"^\s*add_subdirectory\s*\(\s*(\w+)\s*\)",
                      cmakelists.read_text(encoding="utf-8"), re.MULTILINE)


def check_coverage(root: Path) -> int:
    """Asserts the lint walks every src/ subdirectory the build compiles.

    Guards against the failure mode where a new layer (src/fault, src/exp,
    ...) is added to the build but silently escapes linting because a scope
    tuple above was never extended.
    """
    problems: list[str] = []
    subdirs = built_src_subdirs(root)
    if not subdirs:
        problems.append("no add_subdirectory entries found in "
                        "src/CMakeLists.txt — parser out of date?")
    walked = sorted(root.glob("src/*/*.hpp")) + sorted(root.glob("src/*/*.cpp"))
    walked_dirs = {p.parent.relative_to(root).as_posix() for p in walked}
    for sub in subdirs:
        rel = f"src/{sub}"
        if not (root / rel).is_dir():
            problems.append(f"{rel} is built but does not exist")
        elif rel not in walked_dirs:
            problems.append(f"{rel} is built but contributes no .hpp/.cpp "
                            f"to the lint walk")
    for d in CONTRACT_DIRS:
        if d.removeprefix("src/") not in subdirs:
            problems.append(f"R1 contract dir {d} is not an "
                            f"add_subdirectory of src/CMakeLists.txt")
    for p in problems:
        print(f"lint_contracts --check-coverage: {p}")
    if problems:
        return 1
    print(f"lint_contracts --check-coverage: clean "
          f"({len(subdirs)} built src/ subdirectories, "
          f"{len(CONTRACT_DIRS)} under R1 contract scope)")
    return 0


def main(argv: list[str]) -> int:
    if "--check-coverage" in argv:
        rest = [a for a in argv[1:] if a != "--check-coverage"]
        return check_coverage(Path(rest[0]) if rest
                              else Path(__file__).resolve().parents[1])
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parents[1]
    src = root / "src"
    if not src.is_dir():
        print(f"lint_contracts: no src/ under {root}", file=sys.stderr)
        return 2

    findings: list[Finding] = []

    sources = sorted(src.rglob("*.hpp")) + sorted(src.rglob("*.cpp"))
    texts = {p: p.read_text(encoding="utf-8") for p in sources}

    # R2/R3/R4 over all of src/.
    for path, raw in texts.items():
        lint_line_rules(path, path.relative_to(root).as_posix(), raw, findings)

    # R5 over the hot headers.
    for rel in HOT_HEADERS:
        path = root / rel
        if path.exists():
            lint_hot_header_includes(path, texts.get(path) or
                                     path.read_text(encoding="utf-8"),
                                     findings)

    # R1 over rms/core class surfaces.
    for d in CONTRACT_DIRS:
        base = root / d
        cpp_texts = {p: strip_comments_and_strings(texts[p])
                     for p in sorted(base.glob("*.cpp"))}
        for header in sorted(base.glob("*.hpp")):
            lint_contracts_in(header, texts[header], cpp_texts, findings)

    for f in sorted(findings, key=lambda f: (str(f.path), f.line)):
        print(f)
    if findings:
        print(f"lint_contracts: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"lint_contracts: clean ({len(sources)} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
