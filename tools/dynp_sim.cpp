/// dynp_sim — the command-line front end of the library.
///
/// Runs one scheduler configuration over a workload that is either read from
/// a Standard Workload Format (SWF) file or generated from one of the
/// calibrated trace models, and reports the paper's metrics. Optionally
/// validates the produced schedule and exports outcome / policy-timeline
/// CSVs.
///
/// Examples:
///   dynp_sim --trace KTH --jobs 5000 --factor 0.8 --scheduler dynp-sjf-pref
///   dynp_sim --swf CTC-SP2.swf --nodes 430 --scheduler sjf
///   dynp_sim --trace SDSC --scheduler fcfs --semantics easy --export /tmp
///   dynp_sim --trace KTH --jobs 10000 --profile --metrics-out run.json
///            --trace-out run.trace --trace-format chrome   (one line)
///   dynp_sim --trace KTH --jobs 5000 --faults --mtbf 86400 --job-fail-p 0.02
///            --est-error 0.3 --audit                       (one line)

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/simulation.hpp"
#include "exp/experiment.hpp"
#include "exp/orchestrator.hpp"
#include "fault/fault.hpp"
#include "exp/ascii_plot.hpp"
#include "exp/export.hpp"
#include "metrics/validate.hpp"
#include "obs/obs.hpp"
#include "rms/profile.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/feitelson.hpp"
#include "workload/models.hpp"
#include "workload/swf.hpp"
#include "workload/trace_stats.hpp"

namespace {

using namespace dynp;

/// Builds the scheduler configuration from the --scheduler/--semantics
/// options; returns false with a message on unknown names.
[[nodiscard]] bool make_config(const std::string& scheduler,
                               const std::string& semantics, double threshold,
                               core::SimulationConfig& config) {
  if (scheduler == "fcfs" || scheduler == "sjf" || scheduler == "ljf" ||
      scheduler == "saf" || scheduler == "wf") {
    config = core::static_config(policies::policy_by_name(scheduler));
  } else if (scheduler == "dynp-simple") {
    config = core::dynp_config(core::make_simple_decider());
  } else if (scheduler == "dynp-advanced") {
    config = core::dynp_config(core::make_advanced_decider());
  } else if (scheduler == "dynp-sjf-pref") {
    config = core::dynp_config(exp::sjf_preferred_decider(threshold));
  } else if (scheduler == "dynp-threshold") {
    config = core::dynp_config(core::make_threshold_decider(threshold));
  } else {
    std::fprintf(stderr,
                 "unknown --scheduler '%s' (use fcfs|sjf|ljf|saf|wf|"
                 "dynp-simple|dynp-advanced|dynp-sjf-pref|dynp-threshold)\n",
                 scheduler.c_str());
    return false;
  }

  if (semantics == "replan") {
    config.semantics = core::PlannerSemantics::kReplan;
  } else if (semantics == "guarantee") {
    config.semantics = core::PlannerSemantics::kGuarantee;
  } else if (semantics == "easy") {
    config.semantics = core::PlannerSemantics::kQueueingEasy;
    if (config.mode == core::SchedulerMode::kDynP) {
      std::fprintf(stderr,
                   "--semantics easy is a queueing RMS: dynP needs full "
                   "schedules and is not available there\n");
      return false;
    }
  } else {
    std::fprintf(stderr,
                 "unknown --semantics '%s' (use replan|guarantee|easy)\n",
                 semantics.c_str());
    return false;
  }
  return true;
}

// Build identity, stamped at configure time (see tools/CMakeLists.txt);
// printed by --version and written into snapshot headers.
#if !defined(DYNP_BENCH_GIT_SHA)
#define DYNP_BENCH_GIT_SHA "unknown"
#endif
#if !defined(DYNP_BENCH_COMPILER)
#define DYNP_BENCH_COMPILER "unknown"
#endif
#if !defined(DYNP_BENCH_BUILD)
#define DYNP_BENCH_BUILD "unknown"
#endif

[[nodiscard]] std::string build_tag() {
  return std::string("git ") + DYNP_BENCH_GIT_SHA + ", " DYNP_BENCH_COMPILER
         ", " DYNP_BENCH_BUILD;
}

}  // namespace

int main(int argc, char** argv) {
  // --version short-circuits option parsing so scripts can always probe the
  // binary identity, whatever other flags the wrapper would require.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("dynp_sim (%s)\n", build_tag().c_str());
      return 0;
    }
  }
  util::CliParser cli(
      "dynp_sim — simulate a job scheduler over an SWF trace or a synthetic "
      "workload");
  cli.add_option("swf", "", "SWF input file (overrides --trace)");
  cli.add_option("nodes", "0", "machine size for --swf input (required there)");
  cli.add_option("trace", "KTH", "synthetic trace model: CTC, KTH, LANL, SDSC or feitelson");
  cli.add_option("jobs", "5000", "jobs to generate (synthetic input)");
  cli.add_option("machine-scale", "1",
                 "multiply machine size and arrival rate by this factor "
                 "(synthetic input; federation-scale stress shape)");
  cli.add_option("seed", "42", "random seed (synthetic input)");
  cli.add_option("factor", "1.0", "shrinking factor applied to submissions");
  cli.add_flag("sweep",
               "run the paper's full shrinking-factor sweep (1.0 .. 0.6) "
               "over an ensemble of generated job sets through the sweep "
               "orchestrator and report the combined metrics per factor");
  cli.add_option("sets", "5", "ensemble size for --sweep (paper: 10)");
  cli.add_option("threads", "0",
                 "worker threads for --sweep (0 = hardware concurrency)");
  cli.add_option("cache-dir", "",
                 "persistent point-cache directory for --sweep: finished "
                 "points are reused across runs, so an interrupted sweep "
                 "resumes where it stopped");
  cli.add_option("scheduler", "dynp-sjf-pref",
                 "fcfs|sjf|ljf|saf|wf|dynp-simple|dynp-advanced|"
                 "dynp-sjf-pref|dynp-threshold");
  cli.add_option("threshold", "0", "decider threshold in percent");
  cli.add_option("semantics", "replan", "replan|guarantee|easy");
  cli.add_flag("faults",
               "enable fault injection (node outages and/or job failures; "
               "configure with --mtbf/--job-fail-p and friends)");
  cli.add_option("fault-seed", "1", "master seed for all fault streams");
  cli.add_option("mtbf", "0",
                 "mean time between node failures in seconds (0 = no node "
                 "faults)");
  cli.add_option("repair", "3600", "mean node repair time in seconds");
  cli.add_option("job-fail-p", "0",
                 "probability that one execution attempt dies mid-run");
  cli.add_option("max-retries", "3",
                 "requeue attempts before a failed job is dropped");
  cli.add_option("backoff", "60",
                 "base requeue backoff in seconds (doubles per retry, capped "
                 "at 60x)");
  cli.add_option("est-error", "0",
                 "coefficient of variation of the lognormal run-time-estimate "
                 "error applied to the workload (0 = exact estimates)");
  cli.add_option("plan-budget-ms", "0",
                 "per-event wall-clock budget for the self-tuning step in "
                 "milliseconds; overruns degrade to the fallback policy "
                 "(0 = unlimited)");
  cli.add_option("export", "", "directory for outcome/timeline CSV export");
  cli.add_option("metrics-out", "",
                 "write the metrics-registry snapshot (counters, decider "
                 "picks, phase histograms) to this JSON file");
  cli.add_option("trace-out", "",
                 "write a structured event trace to this file");
  cli.add_option("trace-format", "jsonl",
                 "trace encoding: jsonl (one record per line) or chrome "
                 "(open in chrome://tracing / Perfetto)");
  cli.add_flag("trace-provenance",
               "emit decision-provenance spans (per-job lifecycle, tuning "
               "pass chains, commit flows) into the --trace-out stream; "
               "slice them with dynp_tracectl");
  cli.add_flag("profile",
               "time the pipeline phases (planner, decider, event loop) and "
               "print a latency summary; implied histograms land in "
               "--metrics-out");
  cli.add_option("checkpoint-every", "0",
                 "snapshot the full simulation state every N events into "
                 "--checkpoint-dir (0 = off); a write-ahead event journal "
                 "makes the run resumable after a crash");
  cli.add_option("checkpoint-dir", "",
                 "directory for checkpoint snapshots and the event journal "
                 "(with --sweep: per-cell checkpoints under the --cache-dir)");
  cli.add_option("restore", "",
                 "resume from a snapshot file, or from the newest valid "
                 "snapshot in a checkpoint directory (torn snapshots are "
                 "detected and rolled back past)");
  cli.add_option("kill-at-event", "0",
                 "crash-injection hook: raise SIGKILL right after event N "
                 "(0 = off; used by the chaos soak harness)");
  cli.add_option("profile-impl", "tree",
                 "resource-profile backend: tree (hierarchical, default) or "
                 "flat (linear scan; same results bit-for-bit)");
  cli.add_flag("validate", "run the schedule validator on the result");
  cli.add_flag("audit", "run the schedule invariant auditor on every "
               "scheduling event (aborts on the first violation)");
  cli.add_flag("plot", "render an ASCII utilisation timeline (and dynP "
               "policy strip)");
  cli.add_flag("stats", "print workload statistics before simulating");
  if (!cli.parse(argc, argv)) return 1;

  // --- validated numeric options ---
  // Every numeric option goes through the checked accessors: a typo like
  // `--jobs 5k` or `--job-fail-p 1.5` refuses to run with a one-line error
  // instead of silently simulating something else.
  const auto nodes_opt = cli.get_int_checked("nodes", 0, 1u << 24);
  const auto jobs_opt = cli.get_int_checked("jobs", 1, 100000000);
  const auto machine_scale_opt = cli.get_int_checked("machine-scale", 1, 100000);
  const auto seed_opt = cli.get_int_checked("seed", 0, 1LL << 62);
  const auto factor_opt = cli.get_double_checked("factor", 1e-3, 1e3);
  const auto threshold_opt = cli.get_double_checked("threshold", 0.0, 1e6);
  const auto fault_seed_opt = cli.get_int_checked("fault-seed", 0, 1LL << 62);
  const auto mtbf_opt = cli.get_double_checked("mtbf", 0.0, 1e12);
  const auto repair_opt = cli.get_double_checked("repair", 1.0, 1e12);
  const auto fail_p_opt = cli.get_double_checked("job-fail-p", 0.0, 1.0);
  const auto retries_opt = cli.get_int_checked("max-retries", 0, 1000);
  const auto backoff_opt = cli.get_double_checked("backoff", 1.0, 1e9);
  const auto est_error_opt = cli.get_double_checked("est-error", 0.0, 10.0);
  const auto budget_opt = cli.get_double_checked("plan-budget-ms", 0.0, 1e6);
  const auto sets_opt = cli.get_int_checked("sets", 1, 100000);
  const auto threads_opt = cli.get_int_checked("threads", 0, 4096);
  const auto ckpt_every_opt =
      cli.get_int_checked("checkpoint-every", 0, 1LL << 40);
  const auto kill_at_opt = cli.get_int_checked("kill-at-event", 0, 1LL << 40);
  if (!nodes_opt || !jobs_opt || !machine_scale_opt || !seed_opt ||
      !factor_opt || !threshold_opt ||
      !fault_seed_opt || !mtbf_opt || !repair_opt || !fail_p_opt ||
      !retries_opt || !backoff_opt || !est_error_opt || !budget_opt ||
      !sets_opt || !threads_opt || !ckpt_every_opt || !kill_at_opt) {
    return 1;
  }
  if (*ckpt_every_opt > 0 && cli.get("checkpoint-dir").empty() &&
      !cli.get_flag("sweep")) {
    std::fprintf(stderr, "--checkpoint-every requires --checkpoint-dir\n");
    return 1;
  }

  // Process-wide profile backend switch. Both backends are bit-identical by
  // contract (the differential fuzz suite enforces it); the flag exists for
  // A/B perf runs and for byte-identity spot checks against exported CSVs.
  if (const std::string impl = cli.get("profile-impl"); impl == "flat") {
    rms::ResourceProfile::set_default_impl(rms::ProfileImpl::kFlat);
  } else if (impl == "tree") {
    rms::ResourceProfile::set_default_impl(rms::ProfileImpl::kTree);
  } else {
    std::fprintf(stderr, "--profile-impl must be tree or flat\n");
    return 1;
  }

  // --- workload ---
  workload::JobSet jobs;
  if (const std::string swf = cli.get("swf"); !swf.empty()) {
    const auto nodes = static_cast<std::uint32_t>(*nodes_opt);
    if (nodes == 0) {
      std::fprintf(stderr, "--swf input requires --nodes\n");
      return 1;
    }
    try {
      auto parsed = workload::read_swf_file(swf, workload::Machine{swf, nodes});
      std::printf("read %zu jobs from %s (%zu records skipped: %zu truncated, "
                  "%zu malformed, %zu unusable)\n",
                  parsed.set.size(), swf.c_str(), parsed.skipped_records,
                  parsed.skipped_truncated, parsed.skipped_malformed,
                  parsed.skipped_unusable);
      for (const auto& d : parsed.diagnostics) {
        std::fprintf(stderr, "%s:%zu: %s\n", swf.c_str(), d.line,
                     d.reason.c_str());
      }
      if (parsed.skipped_records > parsed.diagnostics.size()) {
        std::fprintf(stderr, "(%zu further skipped records not shown)\n",
                     parsed.skipped_records - parsed.diagnostics.size());
      }
      jobs = std::move(parsed.set);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  } else if (cli.get("trace") == "feitelson") {
    workload::FeitelsonParams params;  // defaults; see feitelson.hpp
    jobs = workload::generate_feitelson(
        params, static_cast<std::size_t>(*jobs_opt),
        static_cast<std::uint64_t>(*seed_opt));
  } else {
    workload::TraceModel model;
    try {
      model = workload::model_by_name(cli.get("trace"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    model = workload::scale_machine(
        model, static_cast<std::uint32_t>(*machine_scale_opt));
    jobs = workload::generate(model, static_cast<std::size_t>(*jobs_opt),
                              static_cast<std::uint64_t>(*seed_opt));
  }
  jobs = jobs.with_shrinking_factor(*factor_opt);
  if (*est_error_opt > 0) {
    jobs = fault::perturb_estimates(
        jobs, *est_error_opt, static_cast<std::uint64_t>(*fault_seed_opt));
  }

  if (cli.get_flag("stats")) {
    const workload::TraceStats s = workload::compute_stats(jobs);
    std::printf("workload: %zu jobs, width avg %.2f, est avg %.0f s, act avg "
                "%.0f s, overest %.3f, interarrival avg %.0f s, offered load "
                "%.1f%%\n",
                jobs.size(), s.width.mean(), s.estimated_runtime.mean(),
                s.actual_runtime.mean(), s.overestimation_factor,
                s.interarrival.mean(), s.offered_load * 100);
  }

  // --- scheduler ---
  core::SimulationConfig config;
  if (!make_config(cli.get("scheduler"), cli.get("semantics"), *threshold_opt,
                   config)) {
    return 1;
  }
  config.audit = cli.get_flag("audit");
  config.plan_budget_us = *budget_opt * 1000.0;

  // --- fault injection ---
  const bool faults_on = cli.get_flag("faults");
  if (faults_on) {
    fault::FaultConfig fc;
    fc.seed = static_cast<std::uint64_t>(*fault_seed_opt);
    fc.node_mtbf = *mtbf_opt;
    fc.node_mttr = *repair_opt;
    fc.job_fail_p = *fail_p_opt;
    fc.max_retries = static_cast<std::uint32_t>(*retries_opt);
    fc.backoff_base = *backoff_opt;
    fc.backoff_cap = *backoff_opt * 60;
    if (const std::string problem = fc.validate(); !problem.empty()) {
      std::fprintf(stderr, "--faults: %s\n", problem.c_str());
      return 1;
    }
    if (!fc.active()) {
      std::fprintf(stderr,
                   "--faults: nothing to inject; set --mtbf and/or "
                   "--job-fail-p\n");
      return 1;
    }
    config.faults = fc;
  } else if (*mtbf_opt > 0 || *fail_p_opt > 0) {
    std::fprintf(stderr,
                 "--mtbf/--job-fail-p have no effect without --faults\n");
    return 1;
  }

  // --- sweep mode: the whole factor grid through the orchestrator ---
  if (cli.get_flag("sweep")) {
    if (!cli.get("restore").empty() || *kill_at_opt > 0) {
      std::fprintf(stderr,
                   "--restore/--kill-at-event apply to single runs; --sweep "
                   "resumes interrupted cells automatically from their "
                   "per-cell checkpoints (--checkpoint-every + --cache-dir)\n");
      return 1;
    }
    if (!cli.get("swf").empty() || cli.get("trace") == "feitelson") {
      std::fprintf(stderr,
                   "--sweep generates its ensemble from a calibrated trace "
                   "model; --swf and --trace feitelson are not supported\n");
      return 1;
    }
    if (*est_error_opt > 0 && !faults_on) {
      std::fprintf(stderr,
                   "--sweep applies --est-error per ensemble set via the "
                   "fault seed; combine it with --faults\n");
      return 1;
    }
    if (faults_on) config.faults->est_error_cv = *est_error_opt;

    workload::TraceModel model;
    try {
      model = workload::model_by_name(cli.get("trace"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }

    obs::Registry sweep_registry;
    exp::OrchestratorOptions options;
    options.threads = static_cast<std::size_t>(*threads_opt);
    options.cache_dir = cli.get("cache-dir");
    options.checkpoint_every = static_cast<std::uint64_t>(*ckpt_every_opt);
    if (!cli.get("metrics-out").empty()) options.registry = &sweep_registry;

    const exp::ExperimentScale scale{
        static_cast<std::size_t>(*sets_opt),
        static_cast<std::size_t>(*jobs_opt),
        static_cast<std::uint64_t>(*seed_opt)};
    exp::SweepOrchestrator orchestrator({model}, scale, options);
    const std::vector<double> factors = exp::paper_shrinking_factors();
    const exp::SweepGrid grid = orchestrator.run_grid(factors, {config});

    std::printf("sweep: %s on %s, %zu sets x %zu jobs, factors 1.0..0.6\n\n",
                config.label().c_str(), model.name.c_str(), scale.sets,
                scale.jobs);
    util::TextTable t;
    std::vector<std::string> header = {"factor",  "SLDwA",   "+-sd",
                                       "bounded", "resp[s]", "util%",
                                       "+-sd",    "switches"};
    if (faults_on) {
      header.insert(header.end(), {"node fail", "job fail", "requeues"});
    }
    t.set_header(header, {util::Align::kLeft});
    for (std::size_t f = 0; f < factors.size(); ++f) {
      const exp::CombinedPoint& p = grid.at(0, f, 0);
      std::vector<std::string> row = {
          util::fmt_fixed(factors[f], 1), util::fmt_fixed(p.sldwa, 2),
          util::fmt_fixed(p.sldwa_stddev, 2),
          util::fmt_fixed(p.avg_bounded_slowdown, 2),
          util::fmt_fixed(p.avg_response, 0),
          util::fmt_fixed(p.utilization, 2),
          util::fmt_fixed(p.util_stddev, 2), util::fmt_fixed(p.switches, 0)};
      if (faults_on) {
        row.push_back(util::fmt_fixed(p.node_failures, 1));
        row.push_back(util::fmt_fixed(p.job_failures, 1));
        row.push_back(util::fmt_fixed(p.requeues, 1));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());

    const exp::SweepStats& stats = orchestrator.stats();
    std::printf("\n%zu points: %zu from cache, %zu simulated (%zu cells) in "
                "%.2fs (%.1f cells/s, %llu stolen cells)\n",
                stats.points_total, stats.cache_hits, stats.cache_misses,
                stats.cells_simulated, stats.seconds,
                stats.seconds > 0
                    ? static_cast<double>(stats.cells_simulated) / stats.seconds
                    : 0.0,
                static_cast<unsigned long long>(stats.stolen_tasks));
    if (const std::string path = cli.get("metrics-out"); !path.empty()) {
      if (!sweep_registry.write_json_file(path)) {
        std::fprintf(stderr, "cannot write --metrics-out %s\n", path.c_str());
        return 1;
      }
      std::printf("metrics snapshot written to %s\n", path.c_str());
    }
    return 0;
  }

  // --- crash-consistent checkpointing (single-run path) ---
  config.checkpoint.every = static_cast<std::uint64_t>(*ckpt_every_opt);
  config.checkpoint.dir = cli.get("checkpoint-dir");
  config.checkpoint.restore_from = cli.get("restore");
  config.checkpoint.kill_after_event = static_cast<std::uint64_t>(*kill_at_opt);
  config.checkpoint.build_tag = build_tag();

  // --- instrumentation (obs layer) ---
  const std::string metrics_out = cli.get("metrics-out");
  const std::string trace_out = cli.get("trace-out");
  const bool profile = cli.get_flag("profile");
  const bool trace_provenance = cli.get_flag("trace-provenance");
  if (trace_provenance && trace_out.empty()) {
    std::fprintf(stderr, "--trace-provenance requires --trace-out\n");
    return 1;
  }
  obs::Registry registry;
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::PhaseProfiler> profiler;
  std::unique_ptr<obs::ProvenanceTracer> provenance;
  if (!metrics_out.empty() || !trace_out.empty() || profile) {
    if (!obs::kEnabled) {
      std::fprintf(stderr,
                   "warning: this binary was built with -DDYNP_OBS=OFF; "
                   "--metrics-out/--trace-out/--profile will produce empty "
                   "output\n");
    }
    if (!trace_out.empty()) {
      obs::TraceFormat format = obs::TraceFormat::kJsonl;
      if (!obs::trace_format_by_name(cli.get("trace-format"), format)) {
        std::fprintf(stderr, "unknown --trace-format '%s' (use jsonl|chrome)\n",
                     cli.get("trace-format").c_str());
        return 1;
      }
      tracer = obs::Tracer::open_file(trace_out, format);
      if (tracer == nullptr) {
        std::fprintf(stderr, "cannot open --trace-out %s\n", trace_out.c_str());
        return 1;
      }
      if (trace_provenance) {
        provenance = std::make_unique<obs::ProvenanceTracer>(*tracer);
      }
    }
    if (profile || !metrics_out.empty()) {
      profiler = std::make_unique<obs::PhaseProfiler>(registry, tracer.get());
    }
    config.instruments.registry = &registry;
    config.instruments.tracer = tracer.get();
    config.instruments.profiler = profiler.get();
    config.instruments.provenance = provenance.get();
  }

  const core::SimulationResult r = core::simulate(jobs, config);

  if (tracer != nullptr) tracer->close();

  // --- recovery provenance (parsed by tools/dynp_chaos; keep the format) ---
  for (const std::string& rejected : r.recovery.rejected_snapshots) {
    std::printf("checkpoint rejected: %s\n", rejected.c_str());
  }
  if (!r.recovery.restored_from.empty()) {
    std::printf("restored from %s at event %llu (replayed %llu journal "
                "events)\n",
                r.recovery.restored_from.c_str(),
                static_cast<unsigned long long>(r.recovery.restored_seq),
                static_cast<unsigned long long>(r.recovery.replayed_events));
  }
  if (r.recovery.snapshots_written > 0) {
    std::printf("%llu checkpoint(s) written to %s\n",
                static_cast<unsigned long long>(r.recovery.snapshots_written),
                config.checkpoint.dir.c_str());
  }

  // --- report ---
  util::TextTable t;
  t.set_header({"metric", "value"}, {util::Align::kLeft, util::Align::kRight});
  t.add_row({"scheduler", config.label()});
  t.add_row({"jobs", util::fmt_count(static_cast<long long>(r.outcomes.size()))});
  t.add_row({"SLDwA", util::fmt_fixed(r.summary.sldwa, 3)});
  t.add_row({"avg slowdown", util::fmt_fixed(r.summary.avg_slowdown, 3)});
  t.add_row({"avg bounded slowdown",
             util::fmt_fixed(r.summary.avg_bounded_slowdown, 3)});
  t.add_row({"avg response [s]", util::fmt_fixed(r.summary.avg_response, 0)});
  t.add_row({"avg wait [s]", util::fmt_fixed(r.summary.avg_wait, 0)});
  t.add_row({"max wait [s]", util::fmt_fixed(r.summary.max_wait, 0)});
  t.add_row({"ARTwW [s]", util::fmt_fixed(r.summary.artww, 0)});
  t.add_row({"utilisation [%]",
             util::fmt_fixed(r.summary.utilization * 100, 2)});
  t.add_row({"makespan [s]", util::fmt_fixed(r.summary.makespan, 0)});
  if (config.mode == core::SchedulerMode::kDynP) {
    t.add_row({"decisions", std::to_string(r.decisions)});
    t.add_row({"policy switches", std::to_string(r.switches)});
    for (std::size_t i = 0; i < config.pool.size(); ++i) {
      t.add_row({std::string("time in ") + policies::name(config.pool[i]) +
                     " [%]",
                 util::fmt_fixed(100.0 * r.time_in_policy[i] /
                                     std::max(1.0, r.summary.makespan),
                                 1)});
    }
  }
  if (faults_on) {
    const auto& f = r.faults;
    t.add_row({"node failures", std::to_string(f.node_failures)});
    t.add_row({"node repairs", std::to_string(f.node_repairs)});
    t.add_row({"job failures", std::to_string(f.job_failures)});
    t.add_row({"node kills", std::to_string(f.node_kills)});
    t.add_row({"requeues", std::to_string(f.requeues)});
    t.add_row({"jobs dropped", std::to_string(f.jobs_dropped)});
    t.add_row({"jobs completed", std::to_string(f.jobs_completed)});
    t.add_row({"repair evictions", std::to_string(f.repair_evictions)});
  }
  if (config.plan_budget_us > 0) {
    t.add_row({"degraded tunings", std::to_string(r.faults.degraded_tunings)});
  }
  std::printf("%s", t.to_string().c_str());

  if (r.audit_events > 0) {
    // The auditor aborts on the first violation, so reaching this line
    // means every check passed.
    std::printf("audit: %llu events audited, %llu invariant checks, "
                "0 violations\n",
                static_cast<unsigned long long>(r.audit_events),
                static_cast<unsigned long long>(r.audit_checks));
  }

  if (profile && !registry.empty()) {
    std::printf("\nphase latency / metrics summary:\n%s",
                registry.summary_table().to_string().c_str());
  }
  if (!metrics_out.empty()) {
    if (!registry.write_json_file(metrics_out)) {
      std::fprintf(stderr, "cannot write --metrics-out %s\n",
                   metrics_out.c_str());
      return 1;
    }
    std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
  }
  if (tracer != nullptr) {
    std::printf("trace written to %s (%llu records, %s format)\n",
                trace_out.c_str(),
                static_cast<unsigned long long>(tracer->records()),
                tracer->format() == obs::TraceFormat::kChrome ? "chrome"
                                                              : "jsonl");
  }

  if (cli.get_flag("plot")) {
    std::printf("\nutilisation over time:\n%s",
                exp::render_utilization_ascii(r.outcomes,
                                              jobs.machine().nodes)
                    .c_str());
    const std::string strip =
        exp::render_policy_strip_ascii(r, config.pool);
    if (!strip.empty()) {
      std::printf("%s     (F = FCFS, S = SJF, L = LJF; dominant policy per "
                  "bucket)\n",
                  strip.c_str());
    }
  }

  if (cli.get_flag("validate")) {
    const auto report = metrics::validate_outcomes(jobs, r.outcomes);
    if (report.ok()) {
      std::printf("validation: OK (schedule is physically consistent)\n");
    } else {
      std::printf("validation: %zu issue(s):\n", report.issues.size());
      for (std::size_t i = 0; i < std::min<std::size_t>(10, report.issues.size());
           ++i) {
        std::printf("  %s\n", report.issues[i].detail.c_str());
      }
      return 2;
    }
  }

  if (const std::string dir = cli.get("export"); !dir.empty()) {
    std::vector<std::string> names;
    for (const auto p : config.pool) names.emplace_back(policies::name(p));
    const bool ok =
        exp::write_outcomes_csv_file(dir + "/outcomes.csv", r.outcomes) &&
        (config.mode != core::SchedulerMode::kDynP ||
         exp::write_policy_timeline_csv_file(dir + "/policy_timeline.csv", r,
                                             names));
    if (!ok) {
      std::fprintf(stderr, "export to %s failed\n", dir.c_str());
      return 1;
    }
    std::printf("exported CSVs to %s\n", dir.c_str());
  }
  return 0;
}
