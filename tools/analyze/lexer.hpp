#pragma once

/// \file lexer.hpp
/// Minimal C++ tokenizer for dynp_analyze. Not a compiler front end: it
/// produces the token stream the repo-specific checks pattern-match against
/// (identifiers, numbers, multi-character operators, punctuation), strips
/// string/character literals (their text can never trigger a finding) and
/// collects comments separately so the suppression engine can parse
/// reasoned allow() annotations. `#include` directives are
/// extracted by a raw line scan, which keeps the tokenizer free of
/// preprocessor state while macro bodies still land in the token stream
/// (checks must see through convenience macros).

#include <cstddef>
#include <string>
#include <vector>

namespace dynp::analyze {

enum class TokenKind : unsigned char {
  kIdentifier,
  kNumber,
  kString,  ///< string/char literal, text replaced by `""`
  kPunct,   ///< operator or punctuation, multi-char ops fused ("::", "->")
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;
};

/// A comment with its source position; `text` excludes the `//` / `/* */`
/// markers. `last_line` differs from `line` for multi-line block comments.
struct Comment {
  std::string text;
  int line = 0;
  int last_line = 0;
  bool trailing = false;  ///< code precedes the comment on its first line
};

/// One `#include` directive. `angled` distinguishes `<...>` system includes
/// from `"..."` repo includes (only the latter feed the layering checks).
struct IncludeDirective {
  std::string path;
  int line = 0;
  bool angled = false;
};

/// Everything the checks need from one source file.
struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;
};

/// Tokenizes \p source. Never fails: unrecognized bytes become single-char
/// punctuation tokens, unterminated literals run to end of file.
[[nodiscard]] LexedFile lex(const std::string& source);

}  // namespace dynp::analyze
