#include "analyzer.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace dynp::analyze {

namespace {

const std::set<std::string>& rand_calls() {
  static const std::set<std::string> s{"rand",    "srand",   "rand_r",
                                       "drand48", "lrand48", "random"};
  return s;
}

const std::set<std::string>& clock_idents() {
  static const std::set<std::string> s{
      "system_clock", "steady_clock", "high_resolution_clock",
      "gettimeofday", "clock_gettime", "timespec_get",
      "localtime",    "gmtime",        "strftime",
      "mktime"};
  return s;
}

const std::set<std::string>& atomic_ops() {
  static const std::set<std::string> s{
      "load",      "store",     "exchange",
      "fetch_add", "fetch_sub", "fetch_and",
      "fetch_or",  "fetch_xor", "compare_exchange_weak",
      "compare_exchange_strong"};
  return s;
}

const std::set<std::string>& iteration_methods() {
  static const std::set<std::string> s{"begin",  "end",  "cbegin", "cend",
                                       "rbegin", "rend", "crbegin", "crend"};
  return s;
}

const std::set<std::string>& keyed_containers() {
  static const std::set<std::string> s{
      "map",           "multimap",           "set",
      "multiset",      "unordered_map",      "unordered_set",
      "unordered_multimap", "unordered_multiset"};
  return s;
}

const std::set<std::string>& unordered_containers() {
  static const std::set<std::string> s{"unordered_map", "unordered_set",
                                       "unordered_multimap",
                                       "unordered_multiset"};
  return s;
}

const std::set<std::string>& guard_types() {
  static const std::set<std::string> s{"lock_guard", "scoped_lock",
                                       "unique_lock", "shared_lock"};
  return s;
}

[[nodiscard]] bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

[[nodiscard]] bool is_ident(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

/// Index just past the `>` matching the `<` at \p lt. Treats `>>` as two
/// closes (nested template arguments). Returns tokens.size() on runaway.
[[nodiscard]] std::size_t skip_template(const std::vector<Token>& tokens,
                                        std::size_t lt) {
  int depth = 0;
  for (std::size_t i = lt; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (is_punct(t, "<")) depth += 1;
    if (is_punct(t, ">")) depth -= 1;
    if (is_punct(t, ">>")) depth -= 2;
    // Template argument lists never contain a bare ';' — a hit means the
    // '<' was a comparison, not a template.
    if (is_punct(t, ";")) return tokens.size();
    if (depth <= 0 && i > lt) return i + 1;
  }
  return tokens.size();
}

/// Index of the `)`/`]` matching the opener at \p open.
[[nodiscard]] std::size_t match_close(const std::vector<Token>& tokens,
                                      std::size_t open, const char* open_text,
                                      const char* close_text) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (is_punct(tokens[i], open_text)) depth += 1;
    if (is_punct(tokens[i], close_text)) {
      depth -= 1;
      if (depth == 0) return i;
    }
  }
  return tokens.size();
}

/// The identifier naming the object of a `.method(...)` access whose `.` is
/// at \p dot: walks back over one `[...]` or `(...)` suffix. "?" when the
/// expression is too exotic to resolve.
[[nodiscard]] std::string object_of_member_access(
    const std::vector<Token>& tokens, std::size_t dot) {
  if (dot == 0) return "?";
  std::size_t i = dot - 1;
  if (is_punct(tokens[i], "]") || is_punct(tokens[i], ")")) {
    const char* open = is_punct(tokens[i], "]") ? "[" : "(";
    const char* close = tokens[i].text.c_str();
    int depth = 0;
    while (true) {
      if (is_punct(tokens[i], close)) depth += 1;
      if (is_punct(tokens[i], open)) {
        depth -= 1;
        if (depth == 0) break;
      }
      if (i == 0) return "?";
      --i;
    }
    if (i == 0) return "?";
    --i;
  }
  return tokens[i].kind == TokenKind::kIdentifier ? tokens[i].text : "?";
}

/// Layer of a repo-relative path: "core" for src/core/..., "" otherwise.
[[nodiscard]] std::string src_layer(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return {};
  const std::size_t slash = rel.find('/', 4);
  return slash == std::string::npos ? std::string() : rel.substr(4, slash - 4);
}

[[nodiscard]] bool ends_with(const std::string& s, const std::string& suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

}  // namespace

const std::vector<std::string>& check_names() {
  static const std::vector<std::string> names{
      "det-rand",
      "det-clock",
      "det-thread-id",
      "det-unordered-iter",
      "det-ptr-key",
      "atomic-implicit-order",
      "atomic-relaxed-undocumented",
      "lock-order",
      "lock-order-unknown",
      "layer-violation",
      "layer-unknown",
      "obs-gate",
  };
  return names;
}

Analyzer::Analyzer(std::string root, AnalyzerConfig config)
    : root_(std::move(root)), config_(std::move(config)) {}

std::string Analyzer::resolve_include(const std::string& inc) const {
  for (const std::string& prefix : {std::string("src/"), std::string()}) {
    const std::string rel = prefix + inc;
    std::ifstream probe(root_ + "/" + rel);
    if (probe) return rel;
  }
  return {};
}

void Analyzer::load_file(const std::string& rel) {
  if (states_.find(rel) != states_.end()) return;
  FileState state;
  state.rel = rel;
  std::ifstream in(root_ + "/" + rel);
  if (in) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    state.lex = lex(buffer.str());
  } else {
    state.pre_findings.push_back(
        Finding{rel, 0, "driver-error", "cannot open file"});
  }
  parse_suppressions(state);
  states_.emplace(rel, std::move(state));
}

void Analyzer::parse_suppressions(FileState& state) {
  static const std::string marker = "dynp-analyze:";
  for (const Comment& comment : state.lex.comments) {
    std::size_t pos = comment.text.find(marker);
    if (pos == std::string::npos) continue;
    pos = comment.text.find("allow", pos);
    if (pos == std::string::npos) {
      state.pre_findings.push_back(Finding{
          state.rel, comment.line, "suppression-reasonless",
          "malformed dynp-analyze comment: expected allow(<check>, "
          "\"<reason>\")"});
      continue;
    }
    const std::size_t open = comment.text.find('(', pos);
    const std::size_t close =
        open == std::string::npos ? std::string::npos
                                  : comment.text.find(')', open);
    if (open == std::string::npos || close == std::string::npos) {
      state.pre_findings.push_back(Finding{
          state.rel, comment.line, "suppression-reasonless",
          "malformed dynp-analyze comment: expected allow(<check>, "
          "\"<reason>\")"});
      continue;
    }
    const std::string inner = comment.text.substr(open + 1, close - open - 1);
    const std::size_t comma = inner.find(',');
    auto strip = [](std::string s) {
      while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
        s.erase(s.begin());
      }
      while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.pop_back();
      return s;
    };
    const std::string check = strip(inner.substr(0, comma));
    std::string reason =
        comma == std::string::npos ? std::string()
                                   : strip(inner.substr(comma + 1));
    if (reason.size() >= 2 && reason.front() == '"' && reason.back() == '"') {
      reason = reason.substr(1, reason.size() - 2);
    } else {
      reason.clear();  // the reason must be a quoted string
    }

    const auto& names = check_names();
    if (std::find(names.begin(), names.end(), check) == names.end()) {
      state.pre_findings.push_back(
          Finding{state.rel, comment.line, "suppression-unknown-check",
                  "allow(" + check + ", ...) names no dynp_analyze check"});
      continue;
    }
    if (reason.empty()) {
      state.pre_findings.push_back(Finding{
          state.rel, comment.line, "suppression-reasonless",
          "allow(" + check +
              ") without a written reason — suppressions must say why"});
      continue;
    }

    Suppression sup;
    sup.check = check;
    sup.reason = reason;
    sup.comment_line = comment.line;
    if (comment.trailing) {
      sup.cover_begin = comment.line;
      sup.cover_end = comment.last_line;
    } else {
      // Standalone comment: covers the next full statement (through its
      // terminating ';' or opening '{'), so one annotation handles a
      // multi-line initializer.
      sup.cover_begin = comment.last_line + 1;
      sup.cover_end = comment.last_line + 1;
      for (std::size_t i = 0; i < state.lex.tokens.size(); ++i) {
        if (state.lex.tokens[i].line <= comment.last_line) continue;
        sup.cover_begin = state.lex.tokens[i].line;
        sup.cover_end = sup.cover_begin;
        int paren_depth = 0;
        for (std::size_t j = i; j < state.lex.tokens.size(); ++j) {
          const Token& t = state.lex.tokens[j];
          if (is_punct(t, "(") || is_punct(t, "[")) paren_depth += 1;
          if (is_punct(t, ")") || is_punct(t, "]")) paren_depth -= 1;
          sup.cover_end = t.line;
          if (paren_depth <= 0 && (is_punct(t, ";") || is_punct(t, "{"))) {
            break;
          }
        }
        break;
      }
    }
    state.suppressions.push_back(std::move(sup));
  }
}

void Analyzer::emit(FileState& state, int line, const std::string& check,
                    std::string message, std::vector<Finding>& findings) {
  for (Suppression& sup : state.suppressions) {
    if (sup.check == check && line >= sup.cover_begin &&
        line <= sup.cover_end) {
      sup.used = true;
      suppressions_honored_ += 1;
      return;
    }
  }
  findings.push_back(Finding{state.rel, line, check, std::move(message)});
}

Analyzer::DeclRegistry Analyzer::scan_declarations(
    const LexedFile& lex, const std::string& rel, bool pure,
    std::vector<Finding>* findings) {
  DeclRegistry reg;
  const std::vector<Token>& tokens = lex.tokens;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier || !is_punct(tokens[i + 1], "<")) {
      continue;
    }
    const bool is_atomic = t.text == "atomic";
    const bool is_keyed = keyed_containers().count(t.text) != 0;
    if (!is_atomic && !is_keyed) continue;

    const std::size_t close = skip_template(tokens, i + 1);
    if (close >= tokens.size()) continue;

    // det-ptr-key: a pointer-typed first template argument means iteration
    // and comparison order follow allocation addresses.
    if (is_keyed && pure && findings != nullptr) {
      std::size_t arg_end = i + 2;
      int depth = 1;
      while (arg_end < close - 1) {
        const Token& a = tokens[arg_end];
        if (is_punct(a, "<")) depth += 1;
        if (is_punct(a, ">")) depth -= 1;
        if (is_punct(a, ">>")) depth -= 2;
        if (depth == 1 && is_punct(a, ",")) break;
        arg_end += 1;
      }
      if (arg_end > i + 2 && is_punct(tokens[arg_end - 1], "*")) {
        findings->push_back(Finding{
            rel, t.line, "det-ptr-key",
            "pointer-keyed " + t.text +
                " — key order follows allocation addresses, which vary "
                "run to run; key by a stable id instead"});
      }
    }

    // Declared name: past the template args, over cv/ref decoration.
    std::size_t j = close;
    while (j < tokens.size() &&
           (is_punct(tokens[j], "&") || is_punct(tokens[j], "*") ||
            is_ident(tokens[j], "const") || is_punct(tokens[j], "&&"))) {
      ++j;
    }
    if (j < tokens.size() && tokens[j].kind == TokenKind::kIdentifier) {
      if (is_atomic) reg.atomics.insert(tokens[j].text);
      if (unordered_containers().count(t.text) != 0) {
        reg.unordered.insert(tokens[j].text);
      }
    }
  }
  return reg;
}

const Analyzer::DeclRegistry& Analyzer::registry_closure(
    const std::string& rel) {
  const auto cached = closure_cache_.find(rel);
  if (cached != closure_cache_.end()) return cached->second;
  // Cycle guard: pathological include loops resolve to the empty registry.
  if (!closure_in_progress_.insert(rel).second) {
    static const DeclRegistry empty;
    return empty;
  }
  load_file(rel);
  const FileState& state = states_.at(rel);
  DeclRegistry merged = scan_declarations(state.lex, rel, false, nullptr);
  for (const IncludeDirective& inc : state.lex.includes) {
    if (inc.angled) continue;
    const std::string target = resolve_include(inc.path);
    if (target.empty()) continue;
    const DeclRegistry& sub = registry_closure(target);
    merged.atomics.insert(sub.atomics.begin(), sub.atomics.end());
    merged.unordered.insert(sub.unordered.begin(), sub.unordered.end());
  }
  closure_in_progress_.erase(rel);
  return closure_cache_.emplace(rel, std::move(merged)).first->second;
}

void Analyzer::check_includes(FileState& state,
                              std::vector<Finding>& findings) {
  const std::string layer = src_layer(state.rel);
  const bool is_header = ends_with(state.rel, ".hpp");
  if (!layer.empty() && !config_.layers.known(layer)) {
    emit(state, 1, "layer-unknown",
         "directory src/" + layer +
             " is not declared in layers.toml — add it with its allowed "
             "dependencies",
         findings);
  }
  for (const IncludeDirective& inc : state.lex.includes) {
    if (inc.angled) continue;

    // obs gate: headers outside src/obs must depend on the instrumentation
    // layer only through its facades, so -DDYNP_OBS=OFF keeps a single
    // compile-out seam.
    if (is_header && state.rel.rfind("src/obs/", 0) != 0 &&
        inc.path.rfind("obs/", 0) == 0 && inc.path != "obs/instruments.hpp" &&
        inc.path != "obs/obs.hpp") {
      emit(state, inc.line, "obs-gate",
           "header includes \"" + inc.path +
               "\" directly — outside src/obs, headers may include only "
               "obs/instruments.hpp or obs/obs.hpp",
           findings);
    }

    if (layer.empty()) continue;  // tools/bench/examples are unrestricted
    const std::string target = resolve_include(inc.path);
    const std::string target_layer =
        target.empty() ? std::string() : src_layer(target);
    if (target_layer.empty()) continue;
    if (!config_.layers.known(target_layer)) {
      emit(state, inc.line, "layer-unknown",
           "include of undeclared layer src/" + target_layer +
               " — add it to layers.toml",
           findings);
      continue;
    }
    if (!config_.layers.may_include(layer, target_layer)) {
      emit(state, inc.line, "layer-violation",
           "src/" + layer + " must not include \"" + inc.path +
               "\" (src/" + target_layer +
               " is not among its declared dependencies)",
           findings);
    }
  }
}

void Analyzer::check_determinism(FileState& state,
                                 std::vector<Finding>& findings) {
  const std::vector<Token>& tokens = state.lex.tokens;
  const DeclRegistry& reg = registry_closure(state.rel);

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    const bool member_access =
        i > 0 && (is_punct(tokens[i - 1], ".") || is_punct(tokens[i - 1], "->"));
    const bool called = i + 1 < tokens.size() && is_punct(tokens[i + 1], "(");

    // det-rand
    if (t.text == "random_device" ||
        (called && !member_access && rand_calls().count(t.text) != 0)) {
      emit(state, t.line, "det-rand",
           t.text + " in deterministic code — draw from the seeded "
           "generators in util/rng.hpp",
           findings);
      continue;
    }

    // det-clock
    if (clock_idents().count(t.text) != 0 ||
        (called && !member_access && (t.text == "time" || t.text == "clock"))) {
      emit(state, t.line, "det-clock",
           t.text + " in deterministic code — wall-clock reads belong in "
           "util/wallclock.hpp or impure-listed files",
           findings);
      continue;
    }

    // det-thread-id
    if (t.text == "this_thread" ||
        (t.text == "id" && i >= 2 && is_punct(tokens[i - 1], "::") &&
         is_ident(tokens[i - 2], "thread"))) {
      emit(state, t.line, "det-thread-id",
           "thread identity in deterministic code — behaviour must not "
           "depend on which worker runs it",
           findings);
      continue;
    }

    // det-unordered-iter: direct begin()/end() on a declared unordered
    // container.
    if (member_access && called && iteration_methods().count(t.text) != 0) {
      const std::string obj = object_of_member_access(tokens, i - 1);
      if (reg.unordered.count(obj) != 0) {
        emit(state, t.line, "det-unordered-iter",
             "iteration over unordered container '" + obj +
                 "' — hash order is not deterministic; use an ordered "
                 "container or sort before use",
             findings);
      }
      continue;
    }

    // det-unordered-iter: range-for over a declared unordered container.
    if (t.text == "for" && called) {
      const std::size_t close = match_close(tokens, i + 1, "(", ")");
      for (std::size_t j = i + 2; j < close; ++j) {
        if (!is_punct(tokens[j], ":")) continue;
        if (j + 1 < close && tokens[j + 1].kind == TokenKind::kIdentifier &&
            reg.unordered.count(tokens[j + 1].text) != 0) {
          emit(state, tokens[j + 1].line, "det-unordered-iter",
               "iteration over unordered container '" + tokens[j + 1].text +
                   "' — hash order is not deterministic; use an ordered "
                   "container or sort before use",
               findings);
        }
        break;
      }
    }
  }

  // det-ptr-key rides along with the declaration scan.
  std::vector<Finding> decl_findings;
  static_cast<void>(
      scan_declarations(state.lex, state.rel, true, &decl_findings));
  for (Finding& f : decl_findings) {
    emit(state, f.line, f.check, f.message, findings);
  }
}

void Analyzer::check_atomics(FileState& state,
                             std::vector<Finding>& findings) {
  const std::vector<Token>& tokens = state.lex.tokens;
  const DeclRegistry& reg = registry_closure(state.rel);
  std::set<std::size_t> consumed_relaxed;

  for (std::size_t i = 1; i + 1 < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier) continue;

    // Atomic member operations: explicit order required, relaxed must be
    // documented in atomics.toml.
    const bool member_access =
        is_punct(tokens[i - 1], ".") || is_punct(tokens[i - 1], "->");
    if (member_access && is_punct(tokens[i + 1], "(") &&
        atomic_ops().count(t.text) != 0) {
      const std::string obj = object_of_member_access(tokens, i - 1);
      const std::size_t close = match_close(tokens, i + 1, "(", ")");
      std::size_t orders = 0;
      bool relaxed = false;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (tokens[j].kind == TokenKind::kIdentifier &&
            tokens[j].text.rfind("memory_order", 0) == 0) {
          orders += 1;
          if (tokens[j].text == "memory_order_relaxed") {
            relaxed = true;
            consumed_relaxed.insert(j);
          }
        }
      }
      if (reg.atomics.count(obj) != 0 && orders == 0) {
        emit(state, t.line, "atomic-implicit-order",
             "'" + obj + "." + t.text +
                 "' without an explicit memory_order — implicit seq_cst "
                 "hides the intended ordering contract",
             findings);
      }
      if (relaxed &&
          config_.atomics.find_relaxed(state.rel, obj) == nullptr) {
        emit(state, t.line, "atomic-relaxed-undocumented",
             "relaxed access to '" + obj +
                 "' is not documented in tools/analyze/atomics.toml — add "
                 "an entry saying why relaxed is safe",
             findings);
      }
      continue;
    }

    // Operator forms on declared atomics (++/--/compound/plain assignment)
    // imply seq_cst without saying so.
    if (reg.atomics.count(t.text) != 0 && !member_access &&
        !is_punct(tokens[i - 1], "::")) {
      const Token& next = tokens[i + 1];
      const bool op_next =
          next.kind == TokenKind::kPunct &&
          (next.text == "++" || next.text == "--" || next.text == "+=" ||
           next.text == "-=" || next.text == "&=" || next.text == "|=" ||
           next.text == "^=" || next.text == "=");
      const bool op_prev = is_punct(tokens[i - 1], "++") ||
                           is_punct(tokens[i - 1], "--");
      // A type-ish predecessor (`atomic<T> name{...}`, `double name = ...`
      // shadowing an atomic elsewhere) means declaration, not access.
      const bool declaration = is_punct(tokens[i - 1], ">") ||
                               is_punct(tokens[i - 1], ">>") ||
                               is_punct(tokens[i - 1], "*") ||
                               is_punct(tokens[i - 1], "&") ||
                               tokens[i - 1].kind == TokenKind::kIdentifier;
      if ((op_next || op_prev) && !declaration) {
        emit(state, t.line, "atomic-implicit-order",
             "operator access to atomic '" + t.text +
                 "' — spell the operation as load/store/fetch_* with an "
                 "explicit memory_order",
             findings);
      }
    }
  }

  // Any relaxed token outside a recognized operation means the site parser
  // was evaded; flag rather than silently pass.
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind == TokenKind::kIdentifier &&
        tokens[i].text == "memory_order_relaxed" &&
        consumed_relaxed.count(i) == 0) {
      emit(state, tokens[i].line, "atomic-relaxed-undocumented",
           "memory_order_relaxed outside a recognized atomic operation — "
           "restructure so the accessed atomic is nameable",
           findings);
    }
  }
}

void Analyzer::check_locks(FileState& state, std::vector<Finding>& findings) {
  const std::vector<Token>& tokens = state.lex.tokens;
  struct Held {
    std::string symbol;
    int depth = 0;
  };
  std::vector<Held> held;
  int depth = 0;

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (is_punct(t, "{")) {
      depth += 1;
      continue;
    }
    if (is_punct(t, "}")) {
      while (!held.empty() && held.back().depth >= depth) held.pop_back();
      depth -= 1;
      continue;
    }
    if (t.kind != TokenKind::kIdentifier || guard_types().count(t.text) == 0) {
      continue;
    }

    // lock_guard [<...>] <var> ( <mutex-expr> ... ) — the mutex identifier
    // is the last identifier of the first constructor argument.
    std::size_t j = i + 1;
    if (j < tokens.size() && is_punct(tokens[j], "<")) {
      j = skip_template(tokens, j);
    }
    if (j < tokens.size() && tokens[j].kind == TokenKind::kIdentifier) ++j;
    if (j >= tokens.size() || !is_punct(tokens[j], "(")) continue;
    const std::size_t close = match_close(tokens, j, "(", ")");
    std::string mutex_symbol;
    int arg_depth = 0;
    for (std::size_t k = j + 1; k < close; ++k) {
      if (is_punct(tokens[k], "(") || is_punct(tokens[k], "[")) arg_depth += 1;
      if (is_punct(tokens[k], ")") || is_punct(tokens[k], "]")) arg_depth -= 1;
      if (arg_depth == 0 && is_punct(tokens[k], ",")) break;
      if (tokens[k].kind == TokenKind::kIdentifier) {
        mutex_symbol = tokens[k].text;
      }
    }
    if (mutex_symbol.empty()) continue;

    const MutexEntry* entry =
        config_.atomics.find_mutex(state.rel, mutex_symbol);
    for (const Held& h : held) {
      const MutexEntry* held_entry =
          config_.atomics.find_mutex(state.rel, h.symbol);
      if (entry == nullptr || held_entry == nullptr) {
        emit(state, t.line, "lock-order-unknown",
             "acquiring '" + mutex_symbol + "' while holding '" + h.symbol +
                 "' — declare both in the atomics.toml lock hierarchy",
             findings);
      } else if (entry->level <= held_entry->level) {
        emit(state, t.line, "lock-order",
             "acquiring '" + mutex_symbol + "' (level " +
                 std::to_string(entry->level) + ") while holding '" +
                 h.symbol + "' (level " + std::to_string(held_entry->level) +
                 ") violates the declared lock hierarchy",
             findings);
      }
    }
    held.push_back(Held{mutex_symbol, depth});
  }
}

std::vector<Finding> Analyzer::run(const std::vector<std::string>& files) {
  std::vector<Finding> findings;
  for (const std::string& rel : files) {
    load_file(rel);
    FileState& state = states_.at(rel);
    scanned_.insert(rel);
    files_scanned_ += 1;

    for (const Finding& f : state.pre_findings) findings.push_back(f);

    check_includes(state, findings);
    check_atomics(state, findings);
    check_locks(state, findings);
    if (config_.purity.is_pure(rel)) {
      check_determinism(state, findings);
    }

    for (const Suppression& sup : state.suppressions) {
      if (!sup.used) {
        findings.push_back(Finding{
            rel, sup.comment_line, "suppression-unused",
            "allow(" + sup.check +
                ") suppresses nothing — remove it so the annotation stays "
                "truthful"});
      }
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.check, a.message) <
                     std::tie(b.file, b.line, b.check, b.message);
            });
  return findings;
}

void Analyzer::check_compile_commands(const std::string& compile_commands_path,
                                      std::vector<Finding>& findings) {
  std::ifstream in(compile_commands_path);
  if (!in) {
    findings.push_back(Finding{compile_commands_path, 0, "driver-error",
                               "cannot open compile_commands.json"});
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::string root_prefix = root_ + "/";

  std::size_t pos = 0;
  std::set<std::string> missing;
  while ((pos = text.find("\"file\"", pos)) != std::string::npos) {
    const std::size_t colon = text.find(':', pos);
    const std::size_t open = text.find('"', colon + 1);
    const std::size_t close = text.find('"', open + 1);
    if (colon == std::string::npos || open == std::string::npos ||
        close == std::string::npos) {
      break;
    }
    std::string file = text.substr(open + 1, close - open - 1);
    pos = close + 1;
    if (file.rfind(root_prefix, 0) == 0) file = file.substr(root_prefix.size());
    if (file.rfind("src/", 0) != 0 || !ends_with(file, ".cpp")) continue;
    if (scanned_.count(file) == 0) missing.insert(file);
  }
  for (const std::string& file : missing) {
    findings.push_back(Finding{
        file, 0, "coverage-gap",
        "built by the project (compile_commands.json) but not scanned — "
        "the analyzer's file walk must cover every built src/ file"});
  }
}

}  // namespace dynp::analyze
