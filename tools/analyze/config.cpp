#include "config.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dynp::analyze {

namespace {

[[nodiscard]] std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Strips a trailing `# comment` that is not inside a string value.
[[nodiscard]] std::string strip_line_comment(const std::string& s) {
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"') in_string = !in_string;
    if (s[i] == '#' && !in_string) return s.substr(0, i);
  }
  return s;
}

[[nodiscard]] bool parse_quoted(const std::string& s, std::string& out) {
  const std::string t = trim(s);
  if (t.size() < 2 || t.front() != '"' || t.back() != '"') return false;
  out = t.substr(1, t.size() - 2);
  return true;
}

[[nodiscard]] bool starts_with(const std::string& s, const std::string& p) {
  return s.size() >= p.size() && s.compare(0, p.size(), p) == 0;
}

}  // namespace

bool TomlFile::load(const std::string& path, std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = path + ": cannot open";
    return false;
  }
  TomlTable* current = nullptr;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    lineno += 1;
    const std::string body = trim(strip_line_comment(line));
    if (body.empty()) continue;

    auto fail = [&](const std::string& what) {
      std::ostringstream os;
      os << path << ":" << lineno << ": " << what;
      error = os.str();
      return false;
    };

    if (starts_with(body, "[[") && body.size() > 4 && body.back() == ']') {
      const std::string name = trim(body.substr(2, body.size() - 4));
      if (name.empty()) return fail("empty [[section]] name");
      sections[name].emplace_back();
      current = &sections[name].back();
      continue;
    }
    if (body.front() == '[' && body.back() == ']') {
      const std::string name = trim(body.substr(1, body.size() - 2));
      if (name.empty()) return fail("empty [section] name");
      auto& tables = sections[name];
      if (tables.empty()) tables.emplace_back();
      current = &tables.back();
      continue;
    }

    const std::size_t eq = body.find('=');
    if (eq == std::string::npos) return fail("expected key = value");
    if (current == nullptr) return fail("key outside any [section]");
    const std::string key = trim(body.substr(0, eq));
    const std::string value = trim(body.substr(eq + 1));
    if (key.empty() || value.empty()) return fail("expected key = value");

    if (value.front() == '[') {
      if (value.back() != ']') return fail("array must close on one line");
      std::vector<std::string> items;
      std::string inner = value.substr(1, value.size() - 2);
      std::size_t pos = 0;
      while (pos < inner.size()) {
        std::size_t comma = inner.find(',', pos);
        if (comma == std::string::npos) comma = inner.size();
        const std::string item = trim(inner.substr(pos, comma - pos));
        if (!item.empty()) {
          std::string parsed;
          if (!parse_quoted(item, parsed)) {
            return fail("array elements must be quoted strings");
          }
          items.push_back(parsed);
        }
        pos = comma + 1;
      }
      current->arrays[key] = std::move(items);
      continue;
    }
    if (value.front() == '"') {
      std::string parsed;
      if (!parse_quoted(value, parsed)) return fail("unterminated string");
      current->strings[key] = parsed;
      continue;
    }
    char* end = nullptr;
    const long parsed = std::strtol(value.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return fail("expected string, integer or array value");
    }
    current->integers[key] = parsed;
  }
  return true;
}

bool PurityMap::is_pure(const std::string& rel_path) const {
  if (impure_files.find(rel_path) != impure_files.end()) return false;
  for (const std::string& dir : pure_dirs) {
    if (starts_with(rel_path, dir + "/")) return true;
  }
  return false;
}

const RelaxedEntry* AtomicsTable::find_relaxed(
    const std::string& file, const std::string& symbol) const {
  for (const RelaxedEntry& e : relaxed) {
    if (e.file == file && e.symbol == symbol) return &e;
  }
  return nullptr;
}

const MutexEntry* AtomicsTable::find_mutex(const std::string& file,
                                           const std::string& symbol) const {
  for (const MutexEntry& e : mutexes) {
    if (e.file == file && e.symbol == symbol) return &e;
  }
  return nullptr;
}

bool LayerMap::may_include(const std::string& from,
                           const std::string& to) const {
  if (from == to) return true;
  const auto it = allowed.find(from);
  if (it == allowed.end()) return false;
  for (const std::string& dep : it->second) {
    if (dep == to) return true;
  }
  return false;
}

bool AnalyzerConfig::load(const std::string& config_dir, std::string& error) {
  // purity.toml
  {
    TomlFile f;
    if (!f.load(config_dir + "/purity.toml", error)) return false;
    const auto pure = f.sections.find("pure");
    if (pure != f.sections.end() && !pure->second.empty()) {
      purity.pure_dirs = pure->second.front().arrays["dirs"];
    }
    const auto impure = f.sections.find("impure");
    if (impure != f.sections.end()) {
      for (const TomlTable& t : impure->second) {
        const std::string file = t.get("file");
        const std::string reason = t.get("reason");
        if (file.empty() || reason.empty()) {
          error = config_dir + "/purity.toml: every [[impure]] entry needs "
                  "file and a written reason";
          return false;
        }
        purity.impure_files[file] = reason;
      }
    }
  }
  // atomics.toml
  {
    TomlFile f;
    if (!f.load(config_dir + "/atomics.toml", error)) return false;
    const auto relaxed = f.sections.find("relaxed");
    if (relaxed != f.sections.end()) {
      for (const TomlTable& t : relaxed->second) {
        RelaxedEntry e{t.get("file"), t.get("symbol"), t.get("reason")};
        if (e.file.empty() || e.symbol.empty() || e.reason.empty()) {
          error = config_dir + "/atomics.toml: every [[relaxed]] entry needs "
                  "file, symbol and a written reason";
          return false;
        }
        atomics.relaxed.push_back(std::move(e));
      }
    }
    const auto mutexes = f.sections.find("mutex");
    if (mutexes != f.sections.end()) {
      for (const TomlTable& t : mutexes->second) {
        MutexEntry e{t.get("file"), t.get("symbol"), t.get_int("level", -1),
                     t.get("reason")};
        if (e.file.empty() || e.symbol.empty() || e.level < 0 ||
            e.reason.empty()) {
          error = config_dir + "/atomics.toml: every [[mutex]] entry needs "
                  "file, symbol, level >= 0 and a written reason";
          return false;
        }
        atomics.mutexes.push_back(std::move(e));
      }
    }
  }
  // layers.toml
  {
    TomlFile f;
    if (!f.load(config_dir + "/layers.toml", error)) return false;
    const auto section = f.sections.find("layers");
    if (section == f.sections.end() || section->second.empty()) {
      error = config_dir + "/layers.toml: missing [layers] section";
      return false;
    }
    for (const auto& [key, deps] : section->second.front().arrays) {
      layers.allowed[key] = deps;
    }
  }
  return true;
}

}  // namespace dynp::analyze
