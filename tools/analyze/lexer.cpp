#include "lexer.hpp"

#include <cctype>

namespace dynp::analyze {

namespace {

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Multi-character operators the checks care about, longest first so maximal
/// munch keeps `>>` and `==` single tokens (the template scanner treats `>>`
/// as two closes; the assignment check must not confuse `==` with `=`).
constexpr const char* kOperators[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "+=", "-=",
    "*=",  "/=",  "%=",  "&=",  "|=", "^=", "==", "!=", "<=", ">=",
    "&&",  "||",  "<<",  ">>",
};

/// True when the previous token allows a `/` to begin a literal (crude but
/// sufficient: the repo has no regex-like code; division is rare in checks'
/// pattern space anyway).
[[nodiscard]] bool line_has_code_before(const std::string& src,
                                        std::size_t comment_start) {
  std::size_t i = comment_start;
  while (i > 0) {
    const char c = src[i - 1];
    if (c == '\n') return false;
    if (std::isspace(static_cast<unsigned char>(c)) == 0) return true;
    --i;
  }
  return false;
}

}  // namespace

LexedFile lex(const std::string& source) {
  LexedFile out;
  const std::size_t n = source.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto advance_over = [&](std::size_t end) {
    for (; i < end && i < n; ++i) {
      if (source[i] == '\n') line += 1;
    }
  };

  while (i < n) {
    const char c = source[i];

    if (c == '\n') {
      line += 1;
      at_line_start = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    // Preprocessor directive: extract #include, then feed the remainder of
    // the directive through the normal tokenizer (macro bodies matter).
    if (c == '#' && at_line_start) {
      std::size_t j = i + 1;
      while (j < n && (source[j] == ' ' || source[j] == '\t')) ++j;
      std::size_t k = j;
      while (k < n && ident_char(source[k])) ++k;
      if (source.compare(j, k - j, "include") == 0) {
        std::size_t p = k;
        while (p < n && (source[p] == ' ' || source[p] == '\t')) ++p;
        if (p < n && (source[p] == '"' || source[p] == '<')) {
          const char close = source[p] == '<' ? '>' : '"';
          const std::size_t end = source.find(close, p + 1);
          if (end != std::string::npos) {
            out.includes.push_back(IncludeDirective{
                source.substr(p + 1, end - p - 1), line, close == '>'});
            advance_over(end + 1);
            at_line_start = false;
            continue;
          }
        }
      }
      at_line_start = false;
      ++i;
      continue;
    }
    at_line_start = false;

    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      std::size_t end = source.find('\n', i);
      if (end == std::string::npos) end = n;
      out.comments.push_back(Comment{source.substr(i + 2, end - i - 2), line,
                                     line, line_has_code_before(source, i)});
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      std::size_t end = source.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      Comment comment{source.substr(i + 2, end - i - 2), line, line,
                      line_has_code_before(source, i)};
      advance_over(end + 2 <= n ? end + 2 : n);
      comment.last_line = line;
      out.comments.push_back(std::move(comment));
      continue;
    }

    // Raw string literal.
    if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && source[p] != '(') delim.push_back(source[p++]);
      const std::string closer = ")" + delim + "\"";
      std::size_t end = source.find(closer, p);
      end = end == std::string::npos ? n : end + closer.size();
      out.tokens.push_back(Token{TokenKind::kString, "\"\"", line});
      advance_over(end);
      continue;
    }

    // String / char literal (handles escapes; content is discarded).
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && source[j] != c) {
        j += source[j] == '\\' ? std::size_t{2} : std::size_t{1};
      }
      out.tokens.push_back(Token{TokenKind::kString, "\"\"", line});
      advance_over(j < n ? j + 1 : n);
      continue;
    }

    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(source[j])) ++j;
      out.tokens.push_back(
          Token{TokenKind::kIdentifier, source.substr(i, j - i), line});
      i = j;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(source[j]) || source[j] == '.' ||
                       ((source[j] == '+' || source[j] == '-') &&
                        (source[j - 1] == 'e' || source[j - 1] == 'E')))) {
        ++j;
      }
      out.tokens.push_back(
          Token{TokenKind::kNumber, source.substr(i, j - i), line});
      i = j;
      continue;
    }

    // Operators, longest first.
    bool matched = false;
    for (const char* op : kOperators) {
      const std::size_t len = std::char_traits<char>::length(op);
      if (source.compare(i, len, op) == 0) {
        out.tokens.push_back(Token{TokenKind::kPunct, op, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;

    out.tokens.push_back(Token{TokenKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace dynp::analyze
