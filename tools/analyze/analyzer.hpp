#pragma once

/// \file analyzer.hpp
/// The dynp_analyze check battery. One `Analyzer` run scans a set of
/// repo-relative files, applies the determinism / atomics / lock / layering
/// checks configured by `AnalyzerConfig`, honours reasoned allow()
/// suppression comments (see DESIGN.md §12 for the exact syntax — spelling
/// it out here would trip the suppression parser on this very file), and
/// returns findings in stable (file, line, check) order so output is
/// byte-exact for the golden-fixture tests.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "config.hpp"
#include "lexer.hpp"

namespace dynp::analyze {

struct Finding {
  std::string file;  ///< repo-relative path
  int line = 0;
  std::string check;
  std::string message;
};

/// Names of every check dynp_analyze implements, in display order. The
/// suppression parser accepts exactly these (plus the meta checks, which
/// are never suppressible).
[[nodiscard]] const std::vector<std::string>& check_names();

class Analyzer {
 public:
  /// \p root is the repo root (used to resolve quoted includes and to make
  /// diagnostics repo-relative).
  Analyzer(std::string root, AnalyzerConfig config);

  /// Scans \p files (repo-relative, sorted). Unreadable files produce a
  /// `driver-error` finding rather than aborting the run.
  [[nodiscard]] std::vector<Finding> run(const std::vector<std::string>& files);

  /// Cross-checks \p compile_commands_path: every built .cpp under src/
  /// must have been scanned by the last `run`. Appends `coverage-gap`
  /// findings to \p findings.
  void check_compile_commands(const std::string& compile_commands_path,
                              std::vector<Finding>& findings);

  [[nodiscard]] std::size_t files_scanned() const { return files_scanned_; }
  [[nodiscard]] std::size_t suppressions_honored() const {
    return suppressions_honored_;
  }

 private:
  struct Suppression {
    std::string check;
    std::string reason;
    int comment_line = 0;
    int cover_begin = 0;  ///< first line the suppression applies to
    int cover_end = 0;    ///< last line (inclusive)
    bool used = false;
  };

  /// Identifiers a file (plus its transitive repo includes) declares with
  /// determinism- or concurrency-relevant types.
  struct DeclRegistry {
    std::set<std::string> atomics;
    std::set<std::string> unordered;
  };

  struct FileState {
    std::string rel;
    LexedFile lex;
    std::vector<Suppression> suppressions;
    std::vector<Finding> pre_findings;  ///< malformed-suppression findings
  };

  void load_file(const std::string& rel);
  void parse_suppressions(FileState& state);
  [[nodiscard]] const DeclRegistry& registry_closure(const std::string& rel);
  [[nodiscard]] DeclRegistry scan_declarations(const LexedFile& lex,
                                               const std::string& rel,
                                               bool pure,
                                               std::vector<Finding>* findings);

  void check_includes(FileState& state, std::vector<Finding>& findings);
  void check_determinism(FileState& state, std::vector<Finding>& findings);
  void check_atomics(FileState& state, std::vector<Finding>& findings);
  void check_locks(FileState& state, std::vector<Finding>& findings);

  /// Routes a finding through the suppression table of \p state.
  void emit(FileState& state, int line, const std::string& check,
            std::string message, std::vector<Finding>& findings);

  /// Resolves a quoted include to a repo-relative path ("" if not a repo
  /// file). Quoted includes are rooted at src/ throughout the repo.
  [[nodiscard]] std::string resolve_include(const std::string& inc) const;

  std::string root_;
  AnalyzerConfig config_;
  std::map<std::string, FileState> states_;
  std::map<std::string, DeclRegistry> closure_cache_;
  std::set<std::string> closure_in_progress_;
  std::set<std::string> scanned_;
  std::size_t files_scanned_ = 0;
  std::size_t suppressions_honored_ = 0;
};

}  // namespace dynp::analyze
