/// \file main.cpp
/// dynp_analyze — repo-native determinism & concurrency static analysis.
///
/// Usage:
///   dynp_analyze --root <repo> [--config-dir <dir>]
///                [--compile-commands <build>/compile_commands.json]
///                [--paths a.cpp,b.hpp ...] [--list-checks]
///
/// With no --paths, scans every .cpp/.hpp under src/, bench/ and tools/.
/// Exit codes: 0 clean, 1 findings, 2 driver/config errors.

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "config.hpp"

namespace {

namespace fs = std::filesystem;

void split_into(const std::string& csv, std::vector<std::string>& out) {
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > pos) out.push_back(csv.substr(pos, comma - pos));
    pos = comma + 1;
  }
}

[[nodiscard]] std::vector<std::string> default_file_walk(
    const std::string& root) {
  std::vector<std::string> files;
  for (const char* top : {"src", "bench", "tools"}) {
    const fs::path base = fs::path(root) / top;
    if (!fs::is_directory(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp") continue;
      files.push_back(
          fs::relative(entry.path(), fs::path(root)).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string config_dir;
  std::string compile_commands;
  std::vector<std::string> paths;
  bool list_checks = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "dynp_analyze: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = value();
    } else if (arg == "--config-dir") {
      config_dir = value();
    } else if (arg == "--compile-commands") {
      compile_commands = value();
    } else if (arg == "--paths") {
      split_into(value(), paths);
    } else if (arg == "--list-checks") {
      list_checks = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: dynp_analyze --root <repo> [--config-dir <dir>]\n"
                   "                    [--compile-commands <file>]\n"
                   "                    [--paths a.cpp,b.hpp] [--list-checks]\n";
      return 0;
    } else {
      std::cerr << "dynp_analyze: unknown argument " << arg << "\n";
      return 2;
    }
  }

  if (list_checks) {
    for (const std::string& name : dynp::analyze::check_names()) {
      std::cout << name << "\n";
    }
    return 0;
  }

  if (config_dir.empty()) config_dir = root + "/tools/analyze";
  dynp::analyze::AnalyzerConfig config;
  std::string error;
  if (!config.load(config_dir, error)) {
    std::cerr << "dynp_analyze: " << error << "\n";
    return 2;
  }

  if (paths.empty()) paths = default_file_walk(root);
  if (paths.empty()) {
    std::cerr << "dynp_analyze: nothing to scan under " << root << "\n";
    return 2;
  }
  std::sort(paths.begin(), paths.end());

  dynp::analyze::Analyzer analyzer(root, config);
  std::vector<dynp::analyze::Finding> findings = analyzer.run(paths);
  if (!compile_commands.empty()) {
    analyzer.check_compile_commands(compile_commands, findings);
  }

  for (const dynp::analyze::Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.check << "] "
              << f.message << "\n";
  }
  if (findings.empty()) {
    std::cout << "dynp_analyze: clean (" << analyzer.files_scanned()
              << " file(s), " << analyzer.suppressions_honored()
              << " suppression(s) honored)\n";
    return 0;
  }
  std::cout << "dynp_analyze: " << findings.size() << " finding(s)\n";
  return 1;
}
