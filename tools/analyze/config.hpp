#pragma once

/// \file config.hpp
/// Checked-in configuration of dynp_analyze: the purity map (which files the
/// determinism checks cover), the atomics discipline table (every relaxed
/// access must be listed with a reason; mutexes carry lock-hierarchy levels)
/// and the layer DAG for include hygiene. Parsed from a small TOML subset —
/// `[section]` / `[[array-of-tables]]` headers, `key = "string"`,
/// `key = integer` and `key = ["a", "b"]` — which is all the three files
/// use; no third-party TOML dependency.

#include <map>
#include <string>
#include <vector>

namespace dynp::analyze {

/// One `[[...]]` table (or the single table of a plain `[section]`).
struct TomlTable {
  std::map<std::string, std::string> strings;
  std::map<std::string, long> integers;
  std::map<std::string, std::vector<std::string>> arrays;

  [[nodiscard]] std::string get(const std::string& key) const {
    const auto it = strings.find(key);
    return it == strings.end() ? std::string() : it->second;
  }
  [[nodiscard]] long get_int(const std::string& key, long fallback) const {
    const auto it = integers.find(key);
    return it == integers.end() ? fallback : it->second;
  }
};

/// Parsed file: section name -> tables in declaration order (a plain
/// `[section]` yields one table, `[[section]]` one per header).
struct TomlFile {
  std::map<std::string, std::vector<TomlTable>> sections;

  /// Parses \p path. On success returns true; on I/O or syntax errors
  /// returns false with a one-line description in \p error.
  [[nodiscard]] bool load(const std::string& path, std::string& error);
};

/// Purity map: which repo-relative paths the determinism checks apply to.
struct PurityMap {
  std::vector<std::string> pure_dirs;  ///< directory prefixes, e.g. "src/core"
  std::map<std::string, std::string> impure_files;  ///< file -> reason

  /// True when \p rel_path lives under a pure directory and is not listed
  /// impure. Every impure listing must carry a reason (load() enforces it).
  [[nodiscard]] bool is_pure(const std::string& rel_path) const;
};

/// One documented relaxed-atomic access: the file the access appears in,
/// the object identifier it is performed on, and why relaxed is safe there.
struct RelaxedEntry {
  std::string file;
  std::string symbol;
  std::string reason;
};

/// One lock-hierarchy member: a mutex identifier as it appears at
/// acquisition sites in \p file, with its level. While a level-L mutex is
/// held, only strictly-greater levels may be acquired.
struct MutexEntry {
  std::string file;
  std::string symbol;
  long level = 0;
  std::string reason;
};

struct AtomicsTable {
  std::vector<RelaxedEntry> relaxed;
  std::vector<MutexEntry> mutexes;

  [[nodiscard]] const RelaxedEntry* find_relaxed(
      const std::string& file, const std::string& symbol) const;
  [[nodiscard]] const MutexEntry* find_mutex(const std::string& file,
                                             const std::string& symbol) const;
};

/// Layer DAG over src/ subdirectories: layer -> layers it may include
/// (itself is always allowed). Directories outside src/ are unrestricted.
struct LayerMap {
  std::map<std::string, std::vector<std::string>> allowed;

  [[nodiscard]] bool known(const std::string& layer) const {
    return allowed.find(layer) != allowed.end();
  }
  [[nodiscard]] bool may_include(const std::string& from,
                                 const std::string& to) const;
};

/// Loads the three config files from \p config_dir (purity.toml,
/// atomics.toml, layers.toml). Returns false with \p error set when a file
/// is missing, malformed, or an entry violates the written-reason policy.
struct AnalyzerConfig {
  PurityMap purity;
  AtomicsTable atomics;
  LayerMap layers;

  [[nodiscard]] bool load(const std::string& config_dir, std::string& error);
};

}  // namespace dynp::analyze
