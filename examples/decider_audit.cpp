/// Auditing the self-tuning step: wraps each decider in a RecordingDecider
/// and reports how often the candidate schedules tie, how often the decision
/// keeps the active policy, and how the choices distribute over the pool —
/// quantifying the structural fact the paper's Table 1 revolves around:
/// tie handling dominates decider behaviour.
///
///   $ ./build/examples/decider_audit --trace CTC --factor 0.8

#include <cstdio>
#include <memory>

#include "core/recording_decider.hpp"
#include "core/simulation.hpp"
#include "exp/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/models.hpp"

int main(int argc, char** argv) {
  using namespace dynp;

  util::CliParser cli("decider_audit — decision statistics per decider");
  cli.add_option("trace", "CTC", "trace model");
  cli.add_option("jobs", "2000", "number of jobs");
  cli.add_option("factor", "0.8", "shrinking factor");
  if (!cli.parse(argc, argv)) return 1;

  const auto model = workload::model_by_name(cli.get("trace"));
  const workload::JobSet jobs =
      workload::generate(model, static_cast<std::size_t>(cli.get_int("jobs")),
                         7)
          .with_shrinking_factor(cli.get_double("factor"));

  const std::vector<std::shared_ptr<const core::Decider>> inners = {
      core::make_simple_decider(),
      core::make_advanced_decider(),
      exp::sjf_preferred_decider(),
      core::make_threshold_decider(5.0),
  };

  util::TextTable t;
  t.set_header({"decider", "decisions", "ties %", "stay %", "switches",
                "F/S/L choices", "SLDwA"},
               {util::Align::kLeft});
  for (const auto& inner : inners) {
    const auto rec = std::make_shared<core::RecordingDecider>(inner);
    const auto r = core::simulate(jobs, core::dynp_config(rec));
    std::array<std::size_t, 3> per_policy{};
    for (const auto& record : rec->records()) {
      if (record.chosen < 3) ++per_policy[record.chosen];
    }
    t.add_row({inner->name(), std::to_string(r.decisions),
               util::fmt_fixed(100 * rec->tie_fraction(), 1),
               util::fmt_fixed(100 * rec->stay_fraction(), 1),
               std::to_string(r.switches),
               std::to_string(per_policy[0]) + "/" +
                   std::to_string(per_policy[1]) + "/" +
                   std::to_string(per_policy[2]),
               util::fmt_fixed(r.summary.sldwa, 3)});
  }
  std::printf("decider audit on %s, %zu jobs, factor %s\n\n%s\n",
              model.name.c_str(), jobs.size(), cli.get("factor").c_str(),
              t.to_string().c_str());
  std::printf(
      "reading: a large tie fraction is normal (single-job queues, equal "
      "orders); the simple decider's low stay%% at high tie%% is exactly the "
      "flaw Table 1 documents — it resolves ties away from the active "
      "policy.\n");
  return 0;
}
