/// Quickstart: the smallest complete use of the library.
///
/// 1. Generate a synthetic workload calibrated to the KTH SP2 trace.
/// 2. Simulate it under a static SJF scheduler.
/// 3. Simulate it under the self-tuning dynP scheduler with the paper's
///    unfair SJF-preferred decider.
/// 4. Compare slowdown and utilisation.
///
///   $ ./build/examples/quickstart

#include <cstdio>

#include "core/simulation.hpp"
#include "exp/experiment.hpp"
#include "workload/models.hpp"

int main() {
  using namespace dynp;

  // A 2000-job synthetic KTH workload, compressed to 80% interarrival times
  // (shrinking factor 0.8 = heavier load, as in the paper's sweep).
  const workload::JobSet jobs =
      workload::generate(workload::kth_model(), 2000, /*seed=*/42)
          .with_shrinking_factor(0.8);
  std::printf("workload: %zu jobs on %s (%u nodes)\n\n", jobs.size(),
              jobs.machine().name.c_str(), jobs.machine().nodes);

  // Static SJF — the best single policy for KTH-like workloads.
  const core::SimulationResult sjf =
      core::simulate(jobs, core::static_config(policies::PolicyKind::kSjf));

  // Self-tuning dynP: at every submit/finish event it plans one candidate
  // schedule per policy (FCFS, SJF, LJF), scores each with SLDwA, and lets
  // the SJF-preferred decider pick.
  const core::SimulationResult dynp =
      core::simulate(jobs, core::dynp_config(exp::sjf_preferred_decider()));

  std::printf("%-22s %12s %12s %10s\n", "scheduler", "SLDwA", "util [%]",
              "switches");
  std::printf("%-22s %12.3f %12.2f %10s\n", "static SJF", sjf.summary.sldwa,
              sjf.summary.utilization * 100, "-");
  std::printf("%-22s %12.3f %12.2f %10llu\n", "dynP (SJF-preferred)",
              dynp.summary.sldwa, dynp.summary.utilization * 100,
              static_cast<unsigned long long>(dynp.switches));

  std::printf("\ndynP made %llu policy decisions (FCFS/SJF/LJF = "
              "%llu/%llu/%llu)\n",
              static_cast<unsigned long long>(dynp.decisions),
              static_cast<unsigned long long>(dynp.decisions_per_policy[0]),
              static_cast<unsigned long long>(dynp.decisions_per_policy[1]),
              static_cast<unsigned long long>(dynp.decisions_per_policy[2]));
  return 0;
}
