/// Compares every scheduler the library ships — the three static policies
/// and dynP with the simple, advanced and SJF-preferred deciders — on one
/// trace and workload level, reproducing in miniature the story of the
/// paper's evaluation.
///
///   $ ./build/examples/policy_comparison --trace SDSC --factor 0.8

#include <cstdio>
#include <memory>

#include "core/simulation.hpp"
#include "exp/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/models.hpp"

int main(int argc, char** argv) {
  using namespace dynp;

  util::CliParser cli("policy_comparison — all schedulers on one workload");
  cli.add_option("trace", "SDSC", "trace model: CTC, KTH, LANL or SDSC");
  cli.add_option("factor", "0.8", "shrinking factor (smaller = more load)");
  cli.add_option("jobs", "2000", "number of jobs");
  cli.add_option("seed", "42", "random seed");
  if (!cli.parse(argc, argv)) return 1;

  workload::TraceModel model;
  try {
    model = workload::model_by_name(cli.get("trace"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  const double factor = cli.get_double("factor");
  const workload::JobSet jobs =
      workload::generate(model, static_cast<std::size_t>(cli.get_int("jobs")),
                         static_cast<std::uint64_t>(cli.get_int("seed")))
          .with_shrinking_factor(factor);

  const std::vector<core::SimulationConfig> configs = {
      core::static_config(policies::PolicyKind::kFcfs),
      core::static_config(policies::PolicyKind::kSjf),
      core::static_config(policies::PolicyKind::kLjf),
      core::dynp_config(core::make_simple_decider()),
      core::dynp_config(core::make_advanced_decider()),
      core::dynp_config(exp::sjf_preferred_decider()),
  };

  util::TextTable t;
  t.set_header({"scheduler", "SLDwA", "bounded sld", "avg wait [s]",
                "util [%]", "switches"},
               {util::Align::kLeft});
  for (const auto& config : configs) {
    const core::SimulationResult r = core::simulate(jobs, config);
    t.add_row({config.label(), util::fmt_fixed(r.summary.sldwa, 3),
               util::fmt_fixed(r.summary.avg_bounded_slowdown, 3),
               util::fmt_fixed(r.summary.avg_wait, 0),
               util::fmt_fixed(r.summary.utilization * 100, 2),
               config.mode == core::SchedulerMode::kDynP
                   ? std::to_string(r.switches)
                   : "-"});
  }

  std::printf("trace %s, %zu jobs, shrinking factor %.2f\n\n%s\n",
              model.name.c_str(), jobs.size(), factor,
              t.to_string().c_str());
  std::printf("expected shape (paper): LJF best utilisation but worst "
              "slowdown; SJF the reverse; dynP at least as good as the best "
              "static policy on slowdown, often with extra utilisation.\n");
  return 0;
}
