/// Workload tooling tour: build a custom trace model, generate a job set,
/// inspect its statistics, export it as a Standard Workload Format (SWF)
/// file, and read it back — the round trip a user performs to exchange
/// workloads with other simulators or to replay real Parallel Workloads
/// Archive logs.
///
///   $ ./build/examples/trace_workshop --out /tmp/mycluster.swf

#include <cstdio>

#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/models.hpp"
#include "workload/swf.hpp"
#include "workload/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace dynp;

  util::CliParser cli("trace_workshop — generate, inspect, export, re-import");
  cli.add_option("out", "/tmp/dynp_workshop.swf", "SWF output path");
  cli.add_option("jobs", "3000", "number of jobs");
  if (!cli.parse(argc, argv)) return 1;

  // A custom model: a 256-node cluster with mixed serial/parallel usage,
  // 6-hour queue limit and mildly bursty arrivals. All fields are plain
  // data — no registration needed.
  workload::TraceModel model;
  model.name = "MYCLUSTER";
  model.nodes = 256;
  model.width_values = {{1, 0.4}, {2, 0.15}, {4, 0.15}, {8, 0.1},
                        {16, 0.1}, {32, 0.05}, {64, 0.03}, {128, 0.015},
                        {256, 0.005}};
  model.width_mean = 8.5;
  model.est_min = 60;
  model.est_max = 21600;
  model.est_mean = 5400;
  model.est_cv = 1.4;
  model.p_est_max = 0.12;
  model.p_full = 0.15;
  model.runtime_fraction = 0.5;
  model.act_max = 21600;
  model.area_correlation = 1.2;
  model.ia_mean = 240;
  model.ia_burst_prob = 0.3;
  model.ia_burst_mean = 3;
  model.diurnal_amplitude = 0.5;  // day/night arrival cycle (extension)

  const std::size_t n = static_cast<std::size_t>(cli.get_int("jobs"));
  const workload::JobSet set = workload::generate(model, n, 7);
  const workload::TraceStats stats = workload::compute_stats(set);

  util::TextTable t;
  t.set_header({"statistic", "min", "avg", "max"}, {util::Align::kLeft});
  const auto row = [&t](const char* name, const util::OnlineStats& s,
                        int dec) {
    t.add_row({name, util::fmt_fixed(s.min(), dec),
               util::fmt_fixed(s.mean(), dec), util::fmt_fixed(s.max(), dec)});
  };
  row("width [nodes]", stats.width, 0);
  row("estimated run time [s]", stats.estimated_runtime, 0);
  row("actual run time [s]", stats.actual_runtime, 0);
  row("interarrival [s]", stats.interarrival, 0);
  std::printf("generated %zu jobs for %s (%u nodes)\n\n%s\n", set.size(),
              model.name.c_str(), model.nodes, t.to_string().c_str());
  std::printf("overestimation factor: %.3f   offered load: %.1f%%\n\n",
              stats.overestimation_factor, stats.offered_load * 100);

  // Export as SWF and re-import.
  const std::string path = cli.get("out");
  if (!workload::write_swf_file(path, set)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  const workload::SwfParseResult parsed =
      workload::read_swf_file(path, set.machine());
  std::printf("SWF round trip via %s: wrote %zu jobs, re-read %zu "
              "(%zu skipped, %zu header lines)\n",
              path.c_str(), set.size(), parsed.set.size(),
              parsed.skipped_records, parsed.header_lines);
  const bool ok = parsed.set.size() == set.size();
  std::printf("round trip %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
