/// Extending the scheduler: implement a *custom* decider against the
/// `dynp::core::Decider` interface and plug it into the self-tuning dynP
/// scheduler. The example implements a hysteresis ("sticky") decider that
/// only switches after the same challenger policy has won N consecutive
/// decisions — damping the policy flapping a plain argmin decider exhibits.
///
///   $ ./build/examples/custom_decider --patience 4

#include <cstdio>
#include <memory>

#include "core/simulation.hpp"
#include "exp/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/models.hpp"

namespace {

using namespace dynp;

/// Switches only after the same alternative policy has strictly beaten the
/// active one in `patience` consecutive decisions.
///
/// Note on state: the `Decider` interface is deliberately stateless per
/// decision; deciders that need history keep it internally, which makes one
/// instance per simulation mandatory (do not share across concurrent runs).
class StickyDecider final : public core::Decider {
 public:
  explicit StickyDecider(int patience) : patience_(patience) {}

  [[nodiscard]] std::size_t decide(
      const core::DecisionInput& input) const override {
    // Find the best policy (pool order breaks ties).
    std::size_t best = 0;
    for (std::size_t i = 1; i < input.values.size(); ++i) {
      if (core::value_less(input.values[i], input.values[best])) best = i;
    }
    if (best == input.old_index ||
        core::value_equal(input.values[best], input.values[input.old_index])) {
      streak_ = 0;
      candidate_ = input.old_index;
      return input.old_index;
    }
    if (best == candidate_) {
      ++streak_;
    } else {
      candidate_ = best;
      streak_ = 1;
    }
    return streak_ >= patience_ ? best : input.old_index;
  }

  [[nodiscard]] std::string name() const override {
    return "sticky(" + std::to_string(patience_) + ")";
  }

 private:
  int patience_;
  mutable std::size_t candidate_ = 0;
  mutable int streak_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("custom_decider — user-defined decider plugged into dynP");
  cli.add_option("patience", "4", "consecutive wins required to switch");
  cli.add_option("trace", "CTC", "trace model");
  cli.add_option("jobs", "2000", "number of jobs");
  if (!cli.parse(argc, argv)) return 1;

  const auto model = workload::model_by_name(cli.get("trace"));
  const workload::JobSet jobs =
      workload::generate(model, static_cast<std::size_t>(cli.get_int("jobs")),
                         11)
          .with_shrinking_factor(0.8);

  util::TextTable t;
  t.set_header({"decider", "SLDwA", "util [%]", "switches"},
               {util::Align::kLeft});
  const int patience = static_cast<int>(cli.get_int("patience"));
  const std::vector<std::shared_ptr<const core::Decider>> deciders = {
      core::make_advanced_decider(),
      exp::sjf_preferred_decider(),
      std::make_shared<StickyDecider>(1),
      std::make_shared<StickyDecider>(patience),
  };
  for (const auto& decider : deciders) {
    const std::string label = decider->name();
    const auto r = core::simulate(jobs, core::dynp_config(decider));
    t.add_row({label, util::fmt_fixed(r.summary.sldwa, 3),
               util::fmt_fixed(r.summary.utilization * 100, 2),
               std::to_string(r.switches)});
  }
  std::printf("custom deciders on %s, %zu jobs, factor 0.8\n\n%s\n",
              model.name.c_str(), jobs.size(), t.to_string().c_str());
  std::printf("sticky(%d) should switch policies less often than sticky(1) "
              "while staying close in SLDwA.\n",
              patience);
  return 0;
}
