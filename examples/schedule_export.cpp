/// Exporting simulation results for analysis: runs dynP on a generated
/// workload, writes the per-job outcome table (Gantt-ready CSV) and the
/// policy-switch timeline, and prints a compact switch summary — the data a
/// user plots to *see* the self-tuning behaviour.
///
///   $ ./build/examples/schedule_export --out-dir /tmp

#include <cstdio>

#include "core/simulation.hpp"
#include "exp/experiment.hpp"
#include "exp/export.hpp"
#include "util/cli.hpp"
#include "workload/models.hpp"

int main(int argc, char** argv) {
  using namespace dynp;

  util::CliParser cli("schedule_export — outcome + policy-timeline CSV dump");
  cli.add_option("out-dir", "/tmp", "directory for the CSV files");
  cli.add_option("trace", "CTC", "trace model");
  cli.add_option("jobs", "1500", "number of jobs");
  cli.add_option("factor", "0.8", "shrinking factor");
  if (!cli.parse(argc, argv)) return 1;

  const auto model = workload::model_by_name(cli.get("trace"));
  const workload::JobSet jobs =
      workload::generate(model, static_cast<std::size_t>(cli.get_int("jobs")),
                         2024)
          .with_shrinking_factor(cli.get_double("factor"));

  core::SimulationConfig config =
      core::dynp_config(exp::sjf_preferred_decider());
  const core::SimulationResult r = core::simulate(jobs, config);

  std::vector<std::string> pool_names;
  for (const auto policy : config.pool) {
    pool_names.emplace_back(policies::name(policy));
  }

  const std::string dir = cli.get("out-dir");
  const std::string outcomes_path = dir + "/dynp_outcomes.csv";
  const std::string timeline_path = dir + "/dynp_policy_timeline.csv";
  if (!exp::write_outcomes_csv_file(outcomes_path, r.outcomes) ||
      !exp::write_policy_timeline_csv_file(timeline_path, r, pool_names)) {
    std::fprintf(stderr, "cannot write CSV files under %s\n", dir.c_str());
    return 1;
  }

  std::printf("simulated %zu jobs on %s under %s\n", jobs.size(),
              model.name.c_str(), config.label().c_str());
  std::printf("  SLDwA %.3f, utilisation %.2f%%, %llu policy switches over "
              "%llu decisions\n",
              r.summary.sldwa, r.summary.utilization * 100,
              static_cast<unsigned long long>(r.switches),
              static_cast<unsigned long long>(r.decisions));
  std::printf("  time in policy:");
  for (std::size_t i = 0; i < pool_names.size(); ++i) {
    std::printf(" %s %.1f%%", pool_names[i].c_str(),
                100.0 * r.time_in_policy[i] /
                    std::max(1.0, r.summary.makespan));
  }
  std::printf("\nwrote %s and %s\n", outcomes_path.c_str(),
              timeline_path.c_str());
  if (!r.policy_timeline.empty()) {
    std::printf("first switches:\n");
    for (std::size_t i = 0; i < std::min<std::size_t>(5, r.policy_timeline.size());
         ++i) {
      const auto& sw = r.policy_timeline[i];
      std::printf("  t=%.0f  %s -> %s\n", sw.when,
                  pool_names[sw.from].c_str(), pool_names[sw.to].c_str());
    }
  }
  return 0;
}
